"""DGEFMM: Strassen-Winograd with dynamic peeling (Huss-Lederman et al. '96).

The paper's primary comparison point (all Figure 5/6/8/9 results are
normalised to it).  Characteristics reproduced here:

* **column-major storage throughout** — quadrants are strided views of the
  caller's arrays, so the Winograd additions are 2-D strided operations
  (two nested loops in the original Fortran; numpy's strided ufunc here),
  in contrast to MODGEMM's contiguous 1-D buffer additions;
* **fixed recursion truncation point** — the empirically determined value
  64 used in the paper's experiments (Section 4);
* **dynamic peeling of odd dimensions** — an odd m, k or n peels one
  row/column and later applies a fix-up computation built from
  matrix-vector products, whose limited reuse is precisely the drawback
  the paper attributes to this scheme (Section 3.2):

  with ``A = [A11 | a12; a21 | a22]`` and ``B = [B11 | b12; b21 | b22]``
  split at the even sizes ``m', k', n'``::

      C11 = A11.B11 + a12.b21      (rank-1 fix-up when k is odd)
      c12 = A.(last column of B)   (matrix-vector, when n is odd)
      c21 = (last row of A).B      (vector-matrix, when m is odd)
"""

from __future__ import annotations

import numpy as np

from ..blas.dgemm import GemmProblem, OpKind
from ..blas.kernels import LeafKernel, get_kernel
from ..core.truncation import TruncationPolicy
from .params import resolve_baseline_truncation

__all__ = ["dgefmm", "peeled_multiply", "DEFAULT_TRUNCATION"]

#: The empirically determined recursion truncation point used for DGEFMM in
#: the paper's experiments (Section 4).
DEFAULT_TRUNCATION = 64


def dgefmm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
    op_a: "OpKind | str" = "n",
    op_b: "OpKind | str" = "n",
    policy: "TruncationPolicy | int | str | None" = None,
    kernel: "str | LeafKernel" = "numpy",
    truncation: int | None = None,
) -> np.ndarray:
    """BLAS-style dgemm via dynamic-peeling Strassen-Winograd.

    ``policy`` accepts the same forms as :func:`repro.modgemm` (a
    :class:`TruncationPolicy`, an int truncation point, or
    ``"dynamic"``/``"fixed"``); it maps to this scheme's single recursion
    crossover via :meth:`TruncationPolicy.truncation_point` (default 64,
    the paper's Section 4 value).  The historical ``truncation=`` int
    spelling still works but raises a :class:`DeprecationWarning`.
    """
    point = resolve_baseline_truncation(
        "dgefmm", policy, truncation, DEFAULT_TRUNCATION
    )
    p = GemmProblem.create(a, b, op_a=op_a, op_b=op_b, alpha=alpha, beta=beta, c=c)
    d = peeled_multiply(p.op_a_view, p.op_b_view, point, get_kernel(kernel))
    result = p.apply_scaling(d, c)
    if c is not None and result is not c:
        c[...] = result
        return c
    return result


def peeled_multiply(
    a: np.ndarray,
    b: np.ndarray,
    truncation: int = DEFAULT_TRUNCATION,
    kernel: "LeafKernel | None" = None,
) -> np.ndarray:
    """``D = A . B`` on column-major operands, peeling odd dimensions."""
    if truncation < 1:
        raise ValueError(f"truncation must be >= 1, got {truncation}")
    if kernel is None:
        kernel = get_kernel("numpy")
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions disagree: {a.shape} x {b.shape}")
    d = np.empty((m, n), dtype=np.float64, order="F")
    _multiply(a, b, d, truncation, kernel)
    return d


def _multiply(a, b, c, truncation: int, kernel) -> None:
    """``C = A . B`` (overwrite), recursing with peeling."""
    m, k = a.shape
    n = b.shape[1]
    if min(m, k, n) <= truncation:
        kernel(a, b, c, accumulate=False)
        return

    me, ke, ne = m & ~1, k & ~1, n & ~1
    _winograd_even(
        a[:me, :ke], b[:ke, :ne], c[:me, :ne], truncation, kernel
    )
    # Fix-up computations (matrix-vector shaped; limited reuse by design).
    if k != ke:
        # C11 += a12 . b21  — rank-1 update of the peeled product.
        c[:me, :ne] += np.outer(a[:me, ke], b[ke, :ne])
    if n != ne:
        # Last column(s) of C: full matrix-vector product.
        c[:me, ne:] = a[:me, :] @ b[:, ne:]
    if m != me:
        # Last row(s) of C: full vector-matrix product.
        c[me:, :] = a[me:, :] @ b
    return


def _winograd_even(a, b, c, truncation: int, kernel) -> None:
    """One Winograd level over even-dimension operands (strided views).

    Same equation schedule as :mod:`repro.core.winograd`, but over
    column-major quadrant views with freshly allocated F-order temporaries
    at each level — the storage discipline of the original DGEFMM code.
    """
    m, k = a.shape
    n = b.shape[1]
    mh, kh, nh = m // 2, k // 2, n // 2
    a11, a12 = a[:mh, :kh], a[:mh, kh:]
    a21, a22 = a[mh:, :kh], a[mh:, kh:]
    b11, b12 = b[:kh, :nh], b[:kh, nh:]
    b21, b22 = b[kh:, :nh], b[kh:, nh:]
    c11, c12 = c[:mh, :nh], c[:mh, nh:]
    c21, c22 = c[mh:, :nh], c[mh:, nh:]

    s = np.empty((mh, kh), dtype=np.float64, order="F")
    t = np.empty((kh, nh), dtype=np.float64, order="F")
    p = np.empty((mh, nh), dtype=np.float64, order="F")
    q = np.empty((mh, nh), dtype=np.float64, order="F")

    np.subtract(a11, a21, out=s)        # S3
    np.subtract(b22, b12, out=t)        # T3
    _multiply(s, t, p, truncation, kernel)      # P = P5
    np.add(a21, a22, out=s)             # S1
    np.subtract(b12, b11, out=t)        # T1
    _multiply(s, t, c22, truncation, kernel)    # C22 = P3
    np.subtract(s, a11, out=s)          # S2
    np.subtract(b22, t, out=t)          # T2
    _multiply(s, t, c11, truncation, kernel)    # C11 = P4
    np.subtract(a12, s, out=s)          # S4
    np.subtract(b21, t, out=t)          # T4
    _multiply(s, b22, c12, truncation, kernel)  # C12 = P6
    _multiply(a22, t, c21, truncation, kernel)  # C21 = P7

    _multiply(a11, b11, q, truncation, kernel)  # Q = P1
    c11 += q                            # U2 = P1 + P4
    p += c11                            # U3 = U2 + P5
    c12 += c11                          # P6 + U2
    c12 += c22                          # U7 (final C12)
    c21 += p                            # U4 (final C21)
    c22 += p                            # U5 (final C22)
    _multiply(a12, b21, p, truncation, kernel)  # P = P2
    np.add(q, p, out=c11)               # U1 (final C11)
