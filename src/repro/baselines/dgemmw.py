"""DGEMMW: Strassen-Winograd with dynamic overlap (Douglas et al. 1994).

The second comparison implementation in the paper's evaluation.  Odd-sized
dimensions are handled by splitting into two ``ceil(d/2)``-sized blocks
that *overlap* by one row or column (Section 3.2):

* an odd **output** dimension (m or n) duplicates one row/column of the
  operands; the shared strip of C is computed twice — identically — and
  one copy is simply overwritten ("computing the results for the shared
  row or column in both subproblems, and ignoring one of the copies");
* an odd **inner** dimension (k) would double-count the shared column of
  A / row of B in ``C = A1.B1 + A2.B2``, so the duplicated leading column
  of the second A-blocks is zeroed in the copies, restoring the exact
  block identity.

Each recursion level copies its eight blocks to fresh contiguous storage —
the extra data movement and "complicated control structure" the paper
ascribes to this scheme, and the reason it trades more memory traffic for
the absence of fix-up passes.
"""

from __future__ import annotations

import numpy as np

from ..blas.dgemm import GemmProblem, OpKind
from ..blas.kernels import LeafKernel, get_kernel
from ..core.truncation import TruncationPolicy
from .params import resolve_baseline_truncation

__all__ = ["dgemmw", "overlap_multiply", "DEFAULT_TRUNCATION"]

#: Crossover below which the conventional kernel runs; the same order of
#: magnitude as the published GEMMW crossover and DGEFMM's 64.
DEFAULT_TRUNCATION = 64


def dgemmw(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
    op_a: "OpKind | str" = "n",
    op_b: "OpKind | str" = "n",
    policy: "TruncationPolicy | int | str | None" = None,
    kernel: "str | LeafKernel" = "numpy",
    truncation: int | None = None,
) -> np.ndarray:
    """BLAS-style dgemm via dynamic-overlap Strassen-Winograd.

    ``policy`` accepts the same forms as :func:`repro.modgemm`; it maps to
    this scheme's single recursion crossover (default 64).  The historical
    ``truncation=`` int spelling still works but raises a
    :class:`DeprecationWarning`.
    """
    point = resolve_baseline_truncation(
        "dgemmw", policy, truncation, DEFAULT_TRUNCATION
    )
    p = GemmProblem.create(a, b, op_a=op_a, op_b=op_b, alpha=alpha, beta=beta, c=c)
    d = overlap_multiply(p.op_a_view, p.op_b_view, point, get_kernel(kernel))
    result = p.apply_scaling(d, c)
    if c is not None and result is not c:
        c[...] = result
        return c
    return result


def overlap_multiply(
    a: np.ndarray,
    b: np.ndarray,
    truncation: int = DEFAULT_TRUNCATION,
    kernel: "LeafKernel | None" = None,
) -> np.ndarray:
    """``D = A . B`` with overlapping ceil-half decomposition of odd sizes."""
    if truncation < 1:
        raise ValueError(f"truncation must be >= 1, got {truncation}")
    if kernel is None:
        kernel = get_kernel("numpy")
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions disagree: {a.shape} x {b.shape}")
    return _multiply(np.asarray(a, dtype=np.float64),
                     np.asarray(b, dtype=np.float64), truncation, kernel)


def _multiply(a: np.ndarray, b: np.ndarray, truncation: int, kernel) -> np.ndarray:
    m, k = a.shape
    n = b.shape[1]
    if min(m, k, n) <= truncation:
        d = np.empty((m, n), dtype=np.float64, order="F")
        kernel(a, b, d, accumulate=False)
        return d

    mh, kh, nh = (m + 1) // 2, (k + 1) // 2, (n + 1) // 2

    # Contiguous block copies.  The second k-blocks of A start at k - kh:
    # for odd k that duplicates column kh-1, whose copy is zeroed so the
    # shared index contributes exactly once across A1.B1 + A2.B2.
    a11 = np.asfortranarray(a[:mh, :kh])
    a12 = np.asfortranarray(a[:mh, k - kh :])
    a21 = np.asfortranarray(a[m - mh :, :kh])
    a22 = np.asfortranarray(a[m - mh :, k - kh :])
    if k % 2 == 1:
        a12[:, 0] = 0.0
        a22[:, 0] = 0.0
    b11 = np.asfortranarray(b[:kh, :nh])
    b12 = np.asfortranarray(b[:kh, n - nh :])
    b21 = np.asfortranarray(b[k - kh :, :nh])
    b22 = np.asfortranarray(b[k - kh :, n - nh :])

    # Winograd's 7 products / 15 additions over the (possibly overlapping)
    # half-size blocks; products recurse.
    s1 = a21 + a22
    s2 = s1 - a11
    s3 = a11 - a21
    s4 = a12 - s2
    t1 = b12 - b11
    t2 = b22 - t1
    t3 = b22 - b12
    t4 = b21 - t2
    p1 = _multiply(a11, b11, truncation, kernel)
    p2 = _multiply(a12, b21, truncation, kernel)
    p3 = _multiply(s1, t1, truncation, kernel)
    p4 = _multiply(s2, t2, truncation, kernel)
    p5 = _multiply(s3, t3, truncation, kernel)
    p6 = _multiply(s4, b22, truncation, kernel)
    p7 = _multiply(a22, t4, truncation, kernel)

    u2 = p1 + p4
    u3 = u2 + p5
    c11 = p1 + p2
    c21 = u3 + p7
    c22 = u3 + p3
    c12 = (u2 + p3) + p6

    # Reassemble; overlapped strips of C were computed identically in both
    # halves, so plain overwrite discards one copy.
    d = np.empty((m, n), dtype=np.float64, order="F")
    d[:mh, :nh] = c11
    d[:mh, n - nh :] = c12
    d[m - mh :, :nh] = c21
    d[m - mh :, n - nh :] = c22
    return d
