"""Structured execution tracing and invariant checking for the engine.

Three straight performance layers (task-DAG scheduling, low-memory
schedules, stacked batching) turned the engine into a concurrent,
pooled-buffer system whose failure paths are invisible to end-to-end
timing.  This package makes the *actual* execution observable — the same
methodological stance as the paper's ATOM-instrumented cache traces and
the BLIS Strassen instrumentation of Huang et al.: claims about the
algorithm live or die on traces of what really ran.

* :mod:`repro.observe.trace` — a per-session ring buffer of typed events
  (:class:`Tracer`): plan compile/hit/evict, conversions, S/T/U additions,
  leaf products, batch stripes, worker start/steal/finish, errors and
  cancellations, each stamped with a monotonic timestamp and thread id.
  Disabled-mode cost at every instrumented site is a single predicate
  check (``tracer.enabled``).  ``Tracer.dump()`` exports a versioned JSON
  document; ``Tracer.timeline()`` folds worker events into a per-thread
  span/gap profile — the attributable decomposition of the session's one
  ``worker_utilization`` number.
* :mod:`repro.observe.schema` — the versioned trace-document schema
  (:data:`TRACE_SCHEMA`) and a dependency-free validator
  (:func:`validate_trace`).
* :mod:`repro.observe.validate` — the invariant checks that
  ``GemmSession(debug=True)`` arms at phase boundaries: operand-pad
  zeroing, workspace quiescence (poison-fill + checksum), NaN/Inf leaf
  guards, and the scheduler's graph-accounting assertions.  Violations
  raise :class:`repro.errors.InvariantError`.
"""

from ..errors import InvariantError
from .schema import TRACE_SCHEMA, TRACE_SCHEMA_VERSION, validate_trace
from .trace import EVENT_KINDS, TraceEvent, Tracer
from .validate import POISON, check_finite, check_pad_zero, check_quiescent

__all__ = [
    "Tracer",
    "TraceEvent",
    "EVENT_KINDS",
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "validate_trace",
    "InvariantError",
    "POISON",
    "check_finite",
    "check_pad_zero",
    "check_quiescent",
]
