"""The event tracer: a bounded ring buffer of typed execution events.

Every instrumented site in the engine follows the same discipline::

    tr = self.trace            # a Tracer, owned by the session
    if tr.enabled:             # the ONLY disabled-mode cost: one predicate
        tr.emit("convert", label="a", seconds=elapsed)

so a session that never enables tracing pays one attribute check per site
and nothing else — no timestamping, no locking, no allocation.  Enabled
tracing appends a :class:`TraceEvent` (monotonic ``perf_counter``
timestamp, emitting thread id, site label, small JSON-scalar payload) to a
fixed-capacity deque; when the buffer is full the *oldest* event is
dropped and counted, so a long-running session keeps the most recent
window of activity without unbounded memory.

``on_event`` registers observer callbacks that fire synchronously at emit
time (after buffering).  Callbacks run on the emitting thread — which may
be a worker thread holding scheduler or plan locks — so they must be fast
and must not call back into the session.

``dump()`` exports the buffer as a versioned JSON document (see
:mod:`repro.observe.schema`); ``timeline()`` reduces the worker events to
a per-thread profile of busy spans and the gaps between them.
"""

from __future__ import annotations

import threading
from collections import deque
from time import perf_counter

from .schema import EVENT_KINDS, TRACE_SCHEMA_VERSION

__all__ = ["EVENT_KINDS", "TraceEvent", "Tracer"]

_KIND_SET = frozenset(EVENT_KINDS)

#: Kinds that open a worker busy-span in :meth:`Tracer.timeline`.
_SPAN_OPENERS = frozenset(("worker_start", "worker_steal"))


class TraceEvent:
    """One buffered event: ``(seq, kind, t, thread, label, data)``.

    ``t`` is an absolute :func:`time.perf_counter` reading; subtract the
    tracer's ``t0`` for a session-relative time.  ``data`` is ``None`` or
    a small dict of JSON scalars.
    """

    __slots__ = ("seq", "kind", "t", "thread", "label", "data")

    def __init__(self, seq, kind, t, thread, label, data) -> None:
        self.seq = seq
        self.kind = kind
        self.t = t
        self.thread = thread
        self.label = label
        self.data = data

    def as_dict(self) -> dict:
        """The event as a JSON-serialisable dict (schema event shape)."""
        doc = {
            "seq": self.seq,
            "kind": self.kind,
            "t": self.t,
            "thread": self.thread,
            "label": self.label,
        }
        if self.data:
            doc["data"] = self.data
        return doc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extra = f", data={self.data}" if self.data else ""
        return (
            f"TraceEvent(#{self.seq} {self.kind} t={self.t:.6f} "
            f"thread={self.thread} label={self.label!r}{extra})"
        )


class Tracer:
    """A thread-safe, fixed-capacity event buffer with observer hooks.

    Created (always) by :class:`repro.engine.GemmSession`; ``enabled``
    starts False unless the session was built with ``trace=True`` and can
    be toggled at any time — instrumented sites check it per emission, so
    enabling mid-stream starts capturing immediately.
    """

    def __init__(self, capacity: int = 8192, enabled: bool = False) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.enabled = bool(enabled)
        self.t0 = perf_counter()
        self._lock = threading.Lock()
        self._events: "deque[TraceEvent]" = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0
        self._callbacks: list = []

    # -------------------------------------------------------------- control

    def enable(self) -> "Tracer":
        """Start capturing events; returns self for chaining."""
        self.enabled = True
        return self

    def disable(self) -> "Tracer":
        """Stop capturing (buffered events are kept)."""
        self.enabled = False
        return self

    def clear(self) -> None:
        """Drop every buffered event and reset the sequence/drop counters."""
        with self._lock:
            self._events.clear()
            self._seq = 0
            self._dropped = 0

    def on_event(self, callback):
        """Register ``callback(event)`` to run at each (enabled) emit.

        Returns a zero-argument unsubscribe function.  Callbacks run
        synchronously on the emitting thread — keep them cheap and never
        call back into the session or pool from one.
        """
        if not callable(callback):
            raise TypeError(f"on_event needs a callable, got {callback!r}")
        with self._lock:
            self._callbacks.append(callback)

        def unsubscribe() -> None:
            with self._lock:
                try:
                    self._callbacks.remove(callback)
                except ValueError:
                    pass

        return unsubscribe

    # ----------------------------------------------------------------- emit

    def emit(self, kind: str, label: str = "", **data) -> None:
        """Buffer one event (call sites gate this on ``self.enabled``).

        ``data`` values should be JSON scalars (str/int/float/bool) so the
        dump stays schema-valid.  Unknown kinds are rejected early — the
        vocabulary is the schema's.
        """
        if kind not in _KIND_SET:
            raise ValueError(
                f"unknown trace event kind {kind!r}; expected one of "
                f"{EVENT_KINDS}"
            )
        ev = TraceEvent(
            seq=0,
            kind=kind,
            t=perf_counter(),
            thread=threading.get_ident(),
            label=str(label),
            data=data or None,
        )
        with self._lock:
            ev.seq = self._seq
            self._seq += 1
            if len(self._events) == self.capacity:
                self._dropped += 1
            self._events.append(ev)
            callbacks = tuple(self._callbacks)
        for cb in callbacks:
            cb(ev)

    # --------------------------------------------------------------- export

    def events(self) -> list[TraceEvent]:
        """A stable snapshot of the buffered events, oldest first."""
        with self._lock:
            return list(self._events)

    @property
    def dropped(self) -> int:
        """Events displaced by the ring buffer since the last clear()."""
        with self._lock:
            return self._dropped

    def dump(self) -> dict:
        """The buffer as a versioned, JSON-serialisable trace document.

        The document validates against
        :data:`repro.observe.schema.TRACE_SCHEMA`
        (``validate_trace(tracer.dump())`` is the round-trip the tests
        pin).  Timestamps are absolute ``perf_counter`` readings; ``t0``
        is the tracer's creation time in the same clock.
        """
        with self._lock:
            events = [ev.as_dict() for ev in self._events]
            dropped = self._dropped
        return {
            "schema": "repro.trace",
            "version": TRACE_SCHEMA_VERSION,
            "t0": self.t0,
            "capacity": self.capacity,
            "dropped": dropped,
            "events": events,
        }

    def timeline(self) -> dict:
        """Per-thread worker activity: busy spans, gaps, and totals.

        Pairs each ``worker_start``/``worker_steal`` event with the next
        ``worker_finish`` on the same thread and returns, per thread id::

            {"spans": [{"t0", "t1", "label", "stolen"}, ...],
             "gaps":  [{"t0", "t1", "dt"}, ...],   # idle between spans
             "busy":  <summed span seconds>,
             "idle":  <summed gap seconds>}

        This is the attributable decomposition of the session's scalar
        ``worker_utilization``: a low number stops being a mystery when
        the gaps say *which* worker idled *when* (and what it ran on
        either side).  Threads with no worker events are absent.
        """
        timelines: dict[int, dict] = {}
        open_spans: dict[int, TraceEvent] = {}
        for ev in self.events():
            if ev.kind in _SPAN_OPENERS:
                open_spans[ev.thread] = ev
            elif ev.kind == "worker_finish":
                start = open_spans.pop(ev.thread, None)
                if start is None:
                    continue
                tl = timelines.setdefault(
                    ev.thread,
                    {"spans": [], "gaps": [], "busy": 0.0, "idle": 0.0},
                )
                if tl["spans"]:
                    prev_end = tl["spans"][-1]["t1"]
                    gap = start.t - prev_end
                    if gap > 0.0:
                        tl["gaps"].append(
                            {"t0": prev_end, "t1": start.t, "dt": gap}
                        )
                        tl["idle"] += gap
                tl["spans"].append(
                    {
                        "t0": start.t,
                        "t1": ev.t,
                        "label": start.label,
                        "stolen": start.kind == "worker_steal",
                    }
                )
                tl["busy"] += ev.t - start.t
        return timelines

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "enabled" if self.enabled else "disabled"
        with self._lock:
            n, dropped = len(self._events), self._dropped
        return (
            f"Tracer({state}, {n}/{self.capacity} events, "
            f"dropped={dropped})"
        )
