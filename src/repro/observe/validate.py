"""Invariant checks armed by ``GemmSession(debug=True)``.

The pooled-buffer engine rests on a handful of invariants that comments
used to assert and nothing checked:

* **Operand pads stay zero.**  Compiled plans zero their Morton pads once
  and convert with ``zero_pad=False`` forever after (PR 1); the
  ``ip_overwrite`` schedule re-zeros clobbered operand buffers between
  executions (PR 3); batch stacks rely on pads surviving across
  executions (PR 4).  If any of that slips, results are silently wrong —
  the redundant pad arithmetic only cancels when the pad is zero.
* **Workspaces are quiescent between executions.**  Scratch buffers are
  write-before-read *within* one execution; nothing may touch them
  *between* executions (a stray concurrent writer means two executions
  are sharing buffers that the locking discipline says they cannot).
  Debug mode poison-fills every scratch buffer after an execution and
  verifies the poison is intact before the next one — a checksum of
  "nobody wrote here" that machine-checks the Boyer-schedule quiescence
  assumptions instead of trusting them.
* **Leaf products are finite.**  A NaN/Inf escaping a leaf product is
  diagnosed at the site that made it, not three U-chain additions later.
* **Graph accounting balances.**  The scheduler's ``_unfinished`` /
  ``_running`` counters must stay consistent (checked in
  :class:`repro.core.scheduler.WorkerPool` when validation is armed).

All violations raise :class:`repro.errors.InvariantError`.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvariantError

__all__ = ["POISON", "check_finite", "check_pad_zero", "check_quiescent"]

#: The quiescence sentinel debug mode fills scratch buffers with between
#: executions.  A finite, exactly-representable value no real computation
#: produces wholesale (and, unlike NaN, one that ``==`` can verify).
POISON = -6.02214076e23


def check_pad_zero(mm, name: str) -> None:
    """Raise unless every pad element of a Morton matrix is exactly zero.

    ``mm`` is a :class:`repro.layout.matrix.MortonMatrix` (its
    ``pad_is_zero`` walks the leaf tiles that straddle the logical
    boundary).  Matrices with no pad pass trivially.
    """
    if mm.size == mm.rows * mm.cols:
        return
    if not mm.pad_is_zero():
        raise InvariantError(
            f"operand pad corrupted: buffer {name!r} "
            f"({mm.rows}x{mm.cols} padded to "
            f"{mm.padded_rows}x{mm.padded_cols}) has nonzero pad elements; "
            "pooled conversions assume zero pads (zero_pad=False) and the "
            "redundant pad arithmetic is only harmless over zeros"
        )


def check_quiescent(scratch, name: str) -> None:
    """Raise unless a poisoned scratch object is still wholly poisoned.

    ``scratch`` is anything exposing ``poison_intact()`` —
    :class:`~repro.core.workspace.Workspace`,
    :class:`~repro.core.workspace.BatchWorkspace`, or
    :class:`~repro.core.parallel.TaskScratch`.  Call only after the owner
    has ``poison()``-ed it at the end of the previous execution.
    """
    if not scratch.poison_intact():
        raise InvariantError(
            f"workspace {name!r} was written between executions: the "
            "quiescence poison is no longer intact.  Another thread is "
            "sharing this plan's pooled scratch, which the per-plan "
            "locking discipline must never allow"
        )


def check_finite(out: np.ndarray, label: str) -> None:
    """Raise if a leaf product produced any NaN or Inf."""
    if not np.isfinite(out).all():
        bad = int(out.size - np.count_nonzero(np.isfinite(out)))
        raise InvariantError(
            f"leaf product {label} produced {bad} non-finite value(s) "
            f"in a {out.shape} output"
        )
