"""The versioned JSON schema of a dumped trace, plus a stdlib validator.

A trace document (``Tracer.dump()``) is plain JSON so it can leave the
process — archived next to benchmark reports, diffed across runs, or fed
to external timeline viewers.  That only works if the shape is a
*contract*: :data:`TRACE_SCHEMA` is a JSON-Schema (draft-07 subset)
description of version :data:`TRACE_SCHEMA_VERSION`, and
:func:`validate_trace` enforces it with no third-party dependency (the
container has no ``jsonschema``; the validator interprets exactly the
schema subset used here, so the document in the docs and the code that
checks it cannot drift apart).

Version policy: additive changes (new optional event ``data`` fields, new
event kinds) bump nothing; anything that would invalidate an existing
consumer bumps ``TRACE_SCHEMA_VERSION`` and the ``version`` const below.
"""

from __future__ import annotations

__all__ = [
    "EVENT_KINDS",
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "validate_trace",
]

#: Current trace-document version (the ``version`` field of every dump).
TRACE_SCHEMA_VERSION = 1

#: The closed vocabulary of event kinds (the schema rejects others).
EVENT_KINDS = (
    "plan_compile",   # a CompiledPlan/BatchPlan/workspace entry was built
    "plan_hit",       # a cache lookup was served from the LRU
    "plan_evict",     # an LRU entry (and its pooled buffers) was dropped
    "convert",        # one dense<->Morton conversion site ran
    "add",            # one S/T/U Winograd addition pass
    "leaf",           # one leaf product (single tile or batched stack)
    "batch_stripe",   # one batch-axis stripe of a stacked execution
    "worker_start",   # a pool worker began a task from its own deque/inject
    "worker_steal",   # a pool worker began a task stolen from a sibling
    "worker_finish",  # a pool worker completed a task
    "exec",           # one plan execution completed (phase breakdown)
    "error",          # an execution, task or batch item failed
    "cancel",         # a queued task graph was cancelled (pool shutdown)
    "accumulate",     # a beta-scaled fold of a product into a live C
    "relabel",        # a transpose served by Morton quadrant relabeling
    "pack",           # a fused convert-and-add packing pass (additive, v1)
    "store_lookup",   # a plan-store consult during key resolution (additive, v1)
    "autotune_trial", # one timed candidate execution of the autotuner (additive, v1)
)

#: JSON Schema (draft-07 subset) for trace-document version 1.
TRACE_SCHEMA: dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro.trace",
    "type": "object",
    "required": ["schema", "version", "t0", "capacity", "dropped", "events"],
    "properties": {
        "schema": {"const": "repro.trace"},
        "version": {"const": TRACE_SCHEMA_VERSION},
        "t0": {"type": "number"},
        "capacity": {"type": "integer", "minimum": 1},
        "dropped": {"type": "integer", "minimum": 0},
        "events": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["seq", "kind", "t", "thread", "label"],
                "properties": {
                    "seq": {"type": "integer", "minimum": 0},
                    "kind": {"enum": list(EVENT_KINDS)},
                    "t": {"type": "number"},
                    "thread": {"type": "integer"},
                    "label": {"type": "string"},
                    "data": {"type": "object"},
                },
            },
        },
    },
}

_TYPE_CHECKS = {
    # bool is an int subclass in Python; a JSON consumer would not agree,
    # so exclude it from the numeric types explicitly.
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
}


def _validate(value, schema: dict, path: str, errors: list[str]) -> None:
    """Check ``value`` against the draft-07 subset used by TRACE_SCHEMA."""
    if "const" in schema:
        if value != schema["const"]:
            errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
        return
    if "enum" in schema:
        if value not in schema["enum"]:
            errors.append(f"{path}: {value!r} not one of {schema['enum']}")
        return
    expected = schema.get("type")
    if expected is not None and not _TYPE_CHECKS[expected](value):
        errors.append(
            f"{path}: expected {expected}, got {type(value).__name__}"
        )
        return
    minimum = schema.get("minimum")
    if minimum is not None and value < minimum:
        errors.append(f"{path}: {value!r} below minimum {minimum}")
    if expected == "object":
        for name in schema.get("required", ()):
            if name not in value:
                errors.append(f"{path}: missing required field {name!r}")
        for name, sub in schema.get("properties", {}).items():
            if name in value:
                _validate(value[name], sub, f"{path}.{name}", errors)
    elif expected == "array":
        items = schema.get("items")
        if items is not None:
            for i, element in enumerate(value):
                _validate(element, items, f"{path}[{i}]", errors)


def validate_trace(doc) -> dict:
    """Validate a dumped trace document against :data:`TRACE_SCHEMA`.

    Returns the document unchanged on success; raises :class:`ValueError`
    listing every violation (with JSON paths) otherwise.
    """
    errors: list[str] = []
    _validate(doc, TRACE_SCHEMA, "$", errors)
    if errors:
        raise ValueError(
            "trace document does not match schema version "
            f"{TRACE_SCHEMA_VERSION}:\n  " + "\n  ".join(errors)
        )
    return doc
