"""Typed exceptions for the repro package.

Engine callers (``repro.engine``) need to distinguish *why* a GEMM could
not be planned or executed: a malformed problem (shapes), an infeasible or
invalid truncation plan, or an unresolvable kernel/variant.  Each class
subclasses :class:`ValueError` so existing ``except ValueError`` call
sites — and the seed test-suite — keep working unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError", "ShapeError", "PlanError", "KernelError", "BatchItemError",
    "InvariantError",
]


class ReproError(ValueError):
    """Base class for all typed repro errors (a :class:`ValueError`)."""


class ShapeError(ReproError):
    """Operand shapes or dimensions are invalid or non-conformable.

    Raised by :meth:`repro.blas.dgemm.GemmProblem.create` and by
    :meth:`repro.engine.CompiledPlan.execute` when operands do not match
    the plan's frozen geometry.
    """


class PlanError(ReproError):
    """A truncation/recursion plan is invalid or cannot be honoured.

    Raised by :class:`repro.core.truncation.TruncationPolicy` for invalid
    policy parameters or GEMM dimensions, and by the engine when a request
    is inconsistent (e.g. ``parallel=True`` with a non-Winograd variant).
    """


class KernelError(ReproError):
    """A leaf kernel or recursion variant could not be resolved.

    Raised by :func:`repro.blas.kernels.get_kernel` and by the variant
    resolution shared across ``modgemm`` and the engine.
    """


class InvariantError(ReproError):
    """A debug-mode invariant check failed (``GemmSession(debug=True)``).

    Raised by the :mod:`repro.observe` validation layer when an armed
    check at a phase boundary finds pooled state that the engine's
    contracts forbid: a nonzero operand pad, a scratch buffer written
    between executions, a non-finite leaf product, or inconsistent task
    graph accounting.  This always indicates an engine (or caller
    buffer-aliasing) bug, never a property of the input values.
    """


class BatchItemError(ReproError):
    """One item of a :meth:`GemmSession.multiply_many` batch failed.

    ``index`` identifies the failing item in the input order; the original
    exception is chained as ``__cause__``.  Raising this instead of the
    bare cause means a single malformed item surfaces *which* item broke
    without poisoning the rest of the batch dispatch.
    """

    def __init__(self, index: int, cause: BaseException) -> None:
        super().__init__(f"multiply_many item {index} failed: {cause}")
        self.index = index
