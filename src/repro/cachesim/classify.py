"""Miss classification and attribution (the paper's CProf substitute).

Section 4.2: "Preliminary investigations using CProf reveal that this drop
is due to a reduction in conflict misses."  CProf attributed misses to
data structures and classified them; this module provides the equivalent
over our traces:

* :func:`classify_misses` — the classic **three-C** decomposition for a
  direct-mapped cache:

  - *compulsory*: the first access to a block ever;
  - *capacity*: misses a fully-associative LRU cache of the same total
    capacity would also take (the working set genuinely does not fit);
  - *conflict*: everything else — misses caused purely by the
    direct-mapped placement, i.e. the Section 4.2 quadrant phenomenon.

  The fully-associative reference is computed from exact LRU **stack
  distances** via a Fenwick (binary indexed) tree over last-access
  positions — O(log n) per access after consecutive-duplicate collapsing.

* :class:`RegionMap` — named address regions (operand A, operand B,
  product C, workspace...) so misses can be attributed to the structures
  causing them, which is how CProf pointed the paper's authors at the
  NW/SW quadrant pair.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from .cache import CacheConfig
from .vectorized import DirectMappedCache

__all__ = [
    "MissClasses",
    "RegionMap",
    "classify_misses",
    "stack_distances",
    "capacity_miss_curve",
]


@dataclass(frozen=True)
class MissClasses:
    """Three-C decomposition of one trace's misses on one cache.

    ``compulsory + capacity + conflict`` equals the direct-mapped miss
    count exactly.  ``conflict`` is Hill's aggregate definition —
    direct-mapped misses minus fully-associative misses — and can be
    (rarely, slightly) negative when LRU replacement loses to the
    direct-mapped placement on a particular trace.
    """

    accesses: int
    compulsory: int
    capacity: int
    conflict: int

    @property
    def misses(self) -> int:
        return self.compulsory + self.capacity + self.conflict

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def conflict_share(self) -> float:
        """Fraction of all misses that are conflict misses."""
        return self.conflict / self.misses if self.misses else 0.0


def stack_distances(blocks: np.ndarray) -> np.ndarray:
    """Exact LRU stack distance of every access in a block-id sequence.

    The stack distance of access ``i`` to block ``b`` is the number of
    *distinct* blocks referenced since the previous access to ``b``
    (``-1`` for a first access).  An LRU cache of capacity ``C`` blocks
    hits exactly the accesses with ``0 <= distance < C`` — one pass yields
    the miss counts of every capacity at once.

    Fenwick-tree algorithm: positions of most-recent accesses are marked;
    for each access, the distance is the count of marks after the block's
    previous position, which then moves to the current position.
    O(n log n) total.
    """
    blocks = np.asarray(blocks, dtype=np.int64).ravel()
    n = blocks.shape[0]
    dist = np.empty(n, dtype=np.int64)
    if n == 0:
        return dist
    tree = np.zeros(n + 1, dtype=np.int64)  # Fenwick over positions 1..n

    def add(i: int, v: int) -> None:
        i += 1
        while i <= n:
            tree[i] += v
            i += i & (-i)

    def prefix(i: int) -> int:
        i += 1
        s = 0
        while i > 0:
            s += tree[i]
            i -= i & (-i)
        return s

    last: dict[int, int] = {}
    marked = 0
    for i, b in enumerate(blocks.tolist()):
        prev = last.get(b)
        if prev is None:
            dist[i] = -1
        else:
            # distinct blocks touched strictly after prev = marks in (prev, i)
            dist[i] = marked - prefix(prev)
            add(prev, -1)
            marked -= 1
        add(i, 1)
        marked += 1
        last[b] = i
    return dist


def capacity_miss_curve(
    addrs: np.ndarray, block_bytes: int, capacities_blocks: "list[int]"
) -> list[int]:
    """Fully-associative LRU miss counts for *every* capacity at once.

    One stack-distance pass (Mattson's classic result — the inclusion
    property makes LRU miss counts a function of the distance histogram)
    yields ``misses(C) = #compulsory + #{distance >= C}`` for all ``C``
    simultaneously.  This is the working-set analysis of the paper's
    reference [11] (Hill & Smith): where the curve knees is where a
    working set stops fitting.

    ``addrs`` are byte addresses; capacities are in blocks.
    """
    if block_bytes & (block_bytes - 1):
        raise ValueError(f"block size must be a power of two, got {block_bytes}")
    addrs = np.asarray(addrs, dtype=np.int64).ravel()
    blocks = addrs >> (block_bytes.bit_length() - 1)
    if blocks.size:
        keep = np.empty(blocks.size, dtype=bool)
        keep[0] = True
        np.not_equal(blocks[1:], blocks[:-1], out=keep[1:])
        blocks = blocks[keep]
    dist = stack_distances(blocks)
    compulsory = int(np.count_nonzero(dist < 0))
    finite = np.sort(dist[dist >= 0])
    out = []
    for cap in capacities_blocks:
        if cap < 1:
            raise ValueError(f"capacity must be >= 1 block, got {cap}")
        # finite distances >= cap miss
        idx = np.searchsorted(finite, cap, side="left")
        out.append(compulsory + int(finite.size - idx))
    return out


def _fully_associative_misses(blocks: np.ndarray, capacity: int) -> tuple[int, int]:
    """(compulsory, total misses) of a fully-associative LRU of ``capacity``.

    Equivalent to thresholding :func:`stack_distances` at ``capacity``
    (property-tested), but an order of magnitude faster: an OrderedDict is
    an O(1)-per-access LRU.
    """
    from collections import OrderedDict

    lru: OrderedDict[int, None] = OrderedDict()
    seen: set[int] = set()
    compulsory = 0
    misses = 0
    for b in blocks.tolist():
        if b in lru:
            lru.move_to_end(b)
            continue
        misses += 1
        if b not in seen:
            compulsory += 1
            seen.add(b)
        if len(lru) >= capacity:
            lru.popitem(last=False)
        lru[b] = None
    return compulsory, misses


def classify_misses(addrs: np.ndarray, config: CacheConfig) -> MissClasses:
    """Three-C decomposition of a byte-address trace on a DM cache.

    Consecutive duplicate blocks are collapsed first (guaranteed hits in
    both the direct-mapped and the fully-associative reference), keeping
    the exact access and miss counts.
    """
    if config.assoc != 1:
        raise ValueError("three-C classification here targets direct-mapped caches")
    addrs = np.asarray(addrs, dtype=np.int64).ravel()
    total = addrs.shape[0]
    if total == 0:
        return MissClasses(0, 0, 0, 0)
    blocks = addrs >> config.block_bits
    keep = np.empty(total, dtype=bool)
    keep[0] = True
    np.not_equal(blocks[1:], blocks[:-1], out=keep[1:])
    blocks = blocks[keep]

    # Direct-mapped miss count.
    dm = DirectMappedCache(config)
    dm_misses = dm.access(blocks << config.block_bits, return_mask=False)

    # Fully-associative same-capacity LRU reference.
    compulsory, fa_misses = _fully_associative_misses(blocks, config.n_blocks)

    # Hill's aggregate three-C convention: conflict misses are the excess
    # of the real (direct-mapped) miss count over the fully-associative
    # reference (occasionally negative; see MissClasses).
    capacity = fa_misses - compulsory
    conflict = int(dm_misses) - fa_misses
    return MissClasses(
        accesses=total,
        compulsory=compulsory,
        capacity=capacity,
        conflict=conflict,
    )


class RegionMap:
    """Named, non-overlapping address regions for miss attribution."""

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []
        self._names: list[str] = []

    def add(self, name: str, start: int, nbytes: int) -> None:
        """Register region ``[start, start + nbytes)`` under ``name``."""
        if nbytes <= 0:
            raise ValueError(f"region {name!r} must have positive size")
        i = bisect.bisect_left(self._starts, start)
        if i > 0 and self._ends[i - 1] > start:
            raise ValueError(f"region {name!r} overlaps {self._names[i - 1]!r}")
        if i < len(self._starts) and start + nbytes > self._starts[i]:
            raise ValueError(f"region {name!r} overlaps {self._names[i]!r}")
        self._starts.insert(i, start)
        self._ends.insert(i, start + nbytes)
        self._names.insert(i, name)

    def add_array(self, name: str, arr: np.ndarray) -> None:
        """Register a live numpy buffer as a region."""
        self.add(name, arr.__array_interface__["data"][0], arr.nbytes)

    def labels(self, addrs: np.ndarray) -> list[str]:
        """Region name per address ('?' for unmapped)."""
        idx = np.searchsorted(np.asarray(self._starts, dtype=np.int64), addrs, "right") - 1
        ends = np.asarray(self._ends, dtype=np.int64)
        out = []
        for a, i in zip(np.asarray(addrs).tolist(), idx.tolist()):
            if i >= 0 and a < ends[i]:
                out.append(self._names[i])
            else:
                out.append("?")
        return out

    def attribute(
        self, addrs: np.ndarray, miss_mask: np.ndarray
    ) -> dict[str, tuple[int, int]]:
        """Per-region ``(accesses, misses)`` for a trace + miss mask."""
        addrs = np.asarray(addrs, dtype=np.int64).ravel()
        miss_mask = np.asarray(miss_mask, dtype=bool).ravel()
        if addrs.shape != miss_mask.shape:
            raise ValueError("trace and miss mask lengths differ")
        starts = np.asarray(self._starts, dtype=np.int64)
        ends = np.asarray(self._ends, dtype=np.int64)
        idx = np.searchsorted(starts, addrs, "right") - 1
        valid = (idx >= 0) & (addrs < ends[np.clip(idx, 0, None)])
        result: dict[str, tuple[int, int]] = {}
        for name_idx, name in enumerate(self._names):
            sel = valid & (idx == name_idx)
            result[name] = (
                int(np.count_nonzero(sel)),
                int(np.count_nonzero(sel & miss_mask)),
            )
        unmapped = ~valid
        if np.any(unmapped):
            result["?"] = (
                int(np.count_nonzero(unmapped)),
                int(np.count_nonzero(unmapped & miss_mask)),
            )
        return result
