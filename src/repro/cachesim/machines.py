"""The paper's evaluation platforms as cache-simulation machine models.

Geometries are taken from Section 4 verbatim:

* DEC Alpha Miata, 500 MHz 21164 — 8 KB direct-mapped L1, 96 KB 3-way L2,
  2 MB direct-mapped L3;
* Sun Ultra 60, 300 MHz UltraSPARC II — 16 KB L1 (direct-mapped, 32-byte
  blocks), 2 MB L2 (one processor used);
* the ATOM cache experiment of Section 4.2 — a single 16 KB direct-mapped
  cache with 32-byte blocks.

Peak flop rates follow the processors' 2-flops/cycle pipelines; the miss
penalties are plausible mid-1990s latencies.  These feed the *linear time
model* only — the reproduction's claims rest on simulated miss counts and
measured host wall-clock, with the model providing the paper's
"second platform" (see DESIGN.md substitutions).

:func:`scale_machine` divides every capacity and block size by a common
power-of-two factor.  Because conflict phenomena depend only on address
*ratios* (which buffer offsets are congruent modulo the cache size), a
geometry-scaled run of a geometry-scaled workload reproduces full-scale
conflict behaviour at a fraction of the trace length — this is how the
default Figure 9 experiment stays laptop-sized.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .cache import CacheConfig

__all__ = [
    "Machine",
    "ALPHA_MIATA",
    "SUN_ULTRA60",
    "ATOM_EXPERIMENT",
    "scale_machine",
    "MACHINES",
]


@dataclass(frozen=True)
class Machine:
    """A platform: cache hierarchy plus linear-time-model parameters."""

    name: str
    levels: tuple[CacheConfig, ...]
    peak_flops: float  #: flops/second at full pipeline
    miss_penalties: tuple[float, ...]  #: seconds per miss, one per level

    def __post_init__(self) -> None:
        if len(self.levels) != len(self.miss_penalties):
            raise ValueError(
                f"{len(self.levels)} cache levels but "
                f"{len(self.miss_penalties)} miss penalties"
            )
        if not self.levels:
            raise ValueError("a machine needs at least one cache level")


ALPHA_MIATA = Machine(
    name="alpha-miata",
    levels=(
        CacheConfig(8 * 1024, 32, assoc=1, name="L1"),
        CacheConfig(96 * 1024, 64, assoc=3, name="L2"),
        CacheConfig(2 * 1024 * 1024, 64, assoc=1, name="L3"),
    ),
    peak_flops=1.0e9,  # 500 MHz x 2 flops/cycle
    miss_penalties=(20e-9, 60e-9, 200e-9),
)

SUN_ULTRA60 = Machine(
    name="sun-ultra60",
    levels=(
        CacheConfig(16 * 1024, 32, assoc=1, name="L1"),
        CacheConfig(2 * 1024 * 1024, 64, assoc=1, name="L2"),
    ),
    peak_flops=0.6e9,  # 300 MHz x 2 flops/cycle
    miss_penalties=(33e-9, 266e-9),
)

ATOM_EXPERIMENT = Machine(
    name="atom-16k-dm",
    levels=(CacheConfig(16 * 1024, 32, assoc=1, name="L1"),),
    peak_flops=1.0e9,
    miss_penalties=(100e-9,),
)

MACHINES = {
    "alpha": ALPHA_MIATA,
    "ultra": SUN_ULTRA60,
    "atom": ATOM_EXPERIMENT,
}


def scale_machine(
    machine: Machine, factor: int, scale_blocks: bool = False
) -> Machine:
    """Shrink every cache capacity by ``factor`` (a power of two).

    Pair with matrix dimensions scaled by ``sqrt(factor)`` so that every
    buffer's *byte* footprint shrinks by the same factor as the caches —
    all base-address congruences modulo the cache size (the source of the
    paper's conflict-miss anomaly, Section 4.2) are then preserved exactly.

    Block sizes are kept at full size by default: conflict alignment does
    not depend on them, while shrinking them would destroy the spatial
    locality that sets the paper's absolute miss-ratio levels.  Pass
    ``scale_blocks=True`` to shrink them too (floored at one float64).
    Associativities, flop rates and penalties are untouched.
    """
    if factor < 1 or (factor & (factor - 1)):
        raise ValueError(f"factor must be a positive power of two, got {factor}")
    if factor == 1:
        return machine
    levels = []
    for lv in machine.levels:
        block = max(8, lv.block_bytes // factor) if scale_blocks else lv.block_bytes
        size = lv.size_bytes // factor
        if size < block * lv.assoc:
            raise ValueError(
                f"cannot scale {lv.name} ({lv.size_bytes} B) by {factor}"
            )
        levels.append(replace(lv, size_bytes=size, block_bytes=block))
    return Machine(
        name=f"{machine.name}/{factor}x",
        levels=tuple(levels),
        peak_flops=machine.peak_flops,
        miss_penalties=machine.miss_penalties,
    )
