"""Candidate-ranking front-end: machine models in service of the tuner.

The autotuner (:mod:`repro.tune`) enumerates truncation-point candidates
``(T, d)`` per GEMM shape and needs to discard the clearly-bad ones
*offline* — before spending host wall-clock timing them.  This module
prices each candidate through the existing :mod:`repro.cachesim`
machinery two ways:

* :func:`model_tilings` — a closed-form first-order estimate: exact flop
  counts (:mod:`repro.analysis.flops`) plus cache-miss counts from the
  cache-oblivious recurrence ``Q(p) = 7 Q(p/2) + Θ(p²/B)`` with base case
  "footprint fits the cache level" (Abu Salem & Al Arab's bound for
  Strassen-like recursions, PAPERS.md), fed to the machine's linear
  :class:`~repro.cachesim.timemodel.TimingModel`.  Milliseconds to
  evaluate, any problem size.
* :func:`simulate_tilings` — the exact route: replay the candidate's full
  address trace (:func:`repro.cachesim.tracegen.modgemm_trace`) through
  the machine's simulated hierarchy.  Faithful but costs seconds per
  candidate, so the tuner reserves it for small shapes.

Absolute seconds from either route are *not* performance claims (the
machine models are 1998 platforms); only the **ordering** of candidates
is consumed, and :func:`rank_tilings` makes even that ordering advisory:
it never drops the engine's own default choice, and it keeps every
candidate within ``keep_ratio`` of the modelled best — the final decision
belongs to on-host timing.  The model prices flops and locality, which
is exactly what distinguishes ``(T, d)`` choices; candidates differing
only in schedule or kernel are indistinguishable to it and must be
separated by the host-timing stage.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.flops import (
    leaf_mult_count,
    winograd_add_count,
    winograd_flops,
)
from ..layout.padding import Tiling
from .hierarchy import CacheHierarchy
from .machines import MACHINES, SUN_ULTRA60, Machine
from .timemodel import ModelledRun, TimingModel
from .trace import SimulatorSink

__all__ = [
    "RankedCandidate",
    "model_tilings",
    "simulate_tilings",
    "rank_tilings",
    "resolve_machine",
]


def resolve_machine(machine: "Machine | str | None") -> Machine:
    """Accept a :class:`Machine`, a ``MACHINES`` key, or ``None`` (ultra)."""
    if machine is None:
        return SUN_ULTRA60
    if isinstance(machine, Machine):
        return machine
    try:
        return MACHINES[machine]
    except KeyError:
        raise ValueError(
            f"unknown machine {machine!r}; expected one of "
            f"{sorted(MACHINES)} or a Machine instance"
        ) from None


@dataclass(frozen=True)
class RankedCandidate:
    """One candidate tiling with its modelled cost and survival verdict."""

    tilings: "tuple[Tiling, Tiling, Tiling]"
    run: ModelledRun
    kept: bool
    is_default: bool = False


def _level_misses(
    pm: int, pk: int, pn: int, depth: int,
    cap_elems: int, block_elems: int,
) -> int:
    """Cache-oblivious miss estimate of one Winograd recursion at one level.

    ``Q(m,k,n) = 7·Q(m/2,k/2,n/2) + (add-pass streaming misses)`` until the
    subproblem footprint (three operands) fits in ``cap_elems``; a fitting
    subproblem pays only its compulsory footprint misses.  A depth-0 leaf
    whose footprint does *not* fit pays the conventional kernel's
    column-sweep misses — the jki loop re-reads all of A once per output
    column and revisits B/C columns beyond any reuse window, which is
    exactly the penalty that makes a too-early truncation point lose.
    """

    def stream(elems: int) -> int:
        return -(-elems // block_elems)

    def q(m: int, k: int, n: int, d: int) -> int:
        footprint = m * k + k * n + m * n
        if footprint <= cap_elems:
            return stream(m * k) + stream(k * n) + stream(m * n)
        if d == 0:
            # Conventional jki product over a working set the cache
            # cannot hold: A streams once per output column, B streams
            # once, C's columns stay resident per-j but are written back.
            return n * stream(m * k) + stream(k * n) + 2 * stream(m * n)
        m2, k2, n2 = m // 2, k // 2, n // 2
        # The level's 15 quarter-size addition passes stream 3 operands
        # each (two reads, one write) with no modelled reuse.
        add_elems = 3 * (4 * m2 * k2 + 4 * k2 * n2 + 7 * m2 * n2)
        return 7 * q(m2, k2, n2, d - 1) + stream(add_elems)

    return q(pm, pk, pn, depth)


def model_tilings(
    tilings: "tuple[Tiling, Tiling, Tiling]",
    machine: "Machine | str | None" = None,
    include_conversion: bool = True,
    elem_bytes: int = 8,
) -> ModelledRun:
    """First-order modelled run of one planned Winograd GEMM.

    Flops are exact (:func:`repro.analysis.flops.winograd_flops` over the
    padded problem).  Accesses count the conversion passes (read + write
    of each operand footprint), the addition passes (3 references per
    added element) and the leaf products (4 references per multiply-add
    pair under the jki model's register-carried accumulation).  Misses
    come from :func:`_level_misses` per cache level.  Use the result for
    *ranking* same-shape candidates only.
    """
    machine = resolve_machine(machine)
    tm, tk, tn = tilings
    pm, pk, pn = tm.padded, tk.padded, tn.padded
    depth = tm.depth
    flops = winograd_flops(tilings)

    add_elems = winograd_add_count(depth, pm, pk, pn)
    leaf_flops = leaf_mult_count(depth) * 2 * tm.tile * tk.tile * tn.tile
    accesses = 3 * add_elems + 2 * leaf_flops
    conv_elems = 0
    if include_conversion:
        conv_elems = pm * pk + pk * pn + pm * pn
        accesses += 2 * conv_elems

    misses = []
    for level in machine.levels:
        cap_elems = max(1, level.size_bytes // elem_bytes)
        block_elems = max(1, level.block_bytes // elem_bytes)
        m = _level_misses(pm, pk, pn, depth, cap_elems, block_elems)
        if include_conversion:
            # Conversion streams each footprint twice (dense side and
            # Morton side); misses are the streamed blocks.
            m += -(-2 * conv_elems // block_elems)
        misses.append(m)
    return TimingModel(machine).evaluate(flops, accesses, misses)


def simulate_tilings(
    tilings: "tuple[Tiling, Tiling, Tiling]",
    machine: "Machine | str | None" = None,
    include_conversion: bool = True,
    variant: str = "winograd",
) -> ModelledRun:
    """Exact modelled run: full address trace through the simulated caches.

    Orders of magnitude slower than :func:`model_tilings` (the trace has
    one entry per element reference) — reserve for small problems or
    final-candidate verification.  Classic-memory sequential execution is
    what the trace generator replays.
    """
    from .tracegen import modgemm_trace

    machine = resolve_machine(machine)
    hierarchy = CacheHierarchy(list(machine.levels))
    ops = modgemm_trace(
        tilings,
        SimulatorSink(hierarchy),
        include_conversion=include_conversion,
        variant=variant,
    )
    return TimingModel(machine).run_trace(ops.flops, ops.accesses, hierarchy)


def rank_tilings(
    candidates,
    machine: "Machine | str | None" = None,
    keep_ratio: float = 1.5,
    max_keep: int = 8,
    default_index: int | None = None,
    include_conversion: bool = True,
) -> list[RankedCandidate]:
    """Model and prune a candidate list; cheapest-first, verdicts attached.

    Every candidate is priced with :func:`model_tilings`; survivors are
    those within ``keep_ratio`` of the modelled best, capped at
    ``max_keep`` (cheapest win the cap).  The candidate at
    ``default_index`` (the engine's heuristic choice) is **always** kept
    — pruning exists to save host timing, never to beat the default by
    fiat.  Returns one :class:`RankedCandidate` per input, sorted by
    modelled seconds.
    """
    if keep_ratio < 1.0:
        raise ValueError(f"keep_ratio must be >= 1.0, got {keep_ratio}")
    if max_keep < 1:
        raise ValueError(f"max_keep must be >= 1, got {max_keep}")
    candidates = list(candidates)
    if not candidates:
        return []
    runs = [
        model_tilings(t, machine, include_conversion=include_conversion)
        for t in candidates
    ]
    order = sorted(range(len(candidates)), key=lambda i: runs[i].seconds)
    best = runs[order[0]].seconds
    ranked = []
    kept = 0
    for pos, i in enumerate(order):
        is_default = default_index is not None and i == default_index
        keep = (
            runs[i].seconds <= best * keep_ratio and kept < max_keep
        ) or is_default
        if keep:
            kept += 1
        ranked.append(
            RankedCandidate(
                tilings=candidates[i], run=runs[i],
                kept=keep, is_default=is_default,
            )
        )
    return ranked
