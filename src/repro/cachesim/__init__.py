"""Trace-driven cache simulation substrate.

The paper analyses its implementations with ATOM-generated address traces
fed to a cache simulator (Section 4.2, Figure 9) and explains performance
through L1 behaviour (Figure 3).  Neither ATOM nor the 1998 hardware is
available, so this package provides the equivalent:

* :mod:`repro.cachesim.cache` — cache geometry configs and a per-set LRU
  set-associative simulator;
* :mod:`repro.cachesim.vectorized` — a streaming, fully vectorised
  direct-mapped simulator (numpy stable-argsort trick) that handles
  hundreds of millions of accesses;
* :mod:`repro.cachesim.hierarchy` — multi-level composition (L1 misses
  form the L2 trace, and so on);
* :mod:`repro.cachesim.trace` — address-trace plumbing: sinks, collectors,
  and a malloc-like synthetic address space;
* :mod:`repro.cachesim.tracegen` — instrumented twins of every kernel and
  of the full MODGEMM / DGEFMM executions, emitting exact element-level
  address streams;
* :mod:`repro.cachesim.machines` — the paper's two platforms (DEC Alpha
  Miata, Sun Ultra 60) and the ATOM experiment geometry, plus exact
  geometric scaling;
* :mod:`repro.cachesim.timemodel` — the linear time model that converts
  flop and miss counts into modelled execution time.
"""

from .cache import CacheConfig, CacheStats, LRUCache
from .vectorized import DirectMappedCache
from .hierarchy import CacheHierarchy, make_cache
from .trace import AddressSpace, TraceCollector, SimulatorSink, CountingSink, TraceSink
from .machines import (
    Machine,
    ALPHA_MIATA,
    SUN_ULTRA60,
    ATOM_EXPERIMENT,
    scale_machine,
)
from .timemodel import TimingModel
from .classify import MissClasses, RegionMap, classify_misses, stack_distances
from .rank import RankedCandidate, model_tilings, rank_tilings, simulate_tilings

__all__ = [
    "CacheConfig",
    "CacheStats",
    "LRUCache",
    "DirectMappedCache",
    "CacheHierarchy",
    "make_cache",
    "AddressSpace",
    "TraceCollector",
    "SimulatorSink",
    "CountingSink",
    "TraceSink",
    "Machine",
    "ALPHA_MIATA",
    "SUN_ULTRA60",
    "ATOM_EXPERIMENT",
    "scale_machine",
    "TimingModel",
    "MissClasses",
    "RegionMap",
    "classify_misses",
    "stack_distances",
    "RankedCandidate",
    "model_tilings",
    "rank_tilings",
    "simulate_tilings",
]
