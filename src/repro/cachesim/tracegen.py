"""Instrumented twins of the kernels and full algorithms (replaces ATOM).

Each generator emits the element-level load/store stream of a code path in
program order, vectorised with numpy (an address chunk per loop nest, not
per access).  The crucial generator is :class:`TraceOps`, a drop-in
backend for the *actual* Winograd/Strassen recursion of
:mod:`repro.core.winograd` — the simulated trace therefore belongs to
exactly the code being benchmarked, taking its addresses from the real
numpy buffers (so quadrant adjacency, workspace reuse, and padding all
appear in the trace as they do in memory).

For DGEFMM, which the paper also traces (Figure 9), the twin mirrors the
dynamic-peeling recursion of :mod:`repro.baselines.dgefmm` over a
malloc-like synthetic address space.

Modelled access patterns:

* leaf / conventional multiply — jki order with ``b[k,j]`` register-held:
  per (j, k) one load of B, then per row i a load of ``a[i,k]`` and an
  update of ``c[i,j]`` (one reference each; write-allocate);
* vector addition ``dst = x op y`` — interleaved streams x[i], y[i],
  dst[i];
* Morton conversion — per tile column: contiguous read of the dense
  column segment interleaved with the contiguous tile write (and the
  reverse for the back-conversion).
"""

from __future__ import annotations

import numpy as np

from ..core.workspace import Workspace
from ..layout.matrix import MortonMatrix
from ..layout.padding import Tiling
from ..layout.tiles import iter_tiles
from .trace import ELEM, AddressSpace, TraceSink

__all__ = [
    "matmul_trace",
    "matmul_trace_blocked",
    "vec3_trace",
    "add2d_trace",
    "move2d_trace",
    "conversion_trace",
    "TraceOps",
    "modgemm_trace",
    "dgefmm_trace",
    "dgemmw_trace",
]


def _addr_of(arr: np.ndarray) -> int:
    """Actual virtual base address of a numpy array's data."""
    return arr.__array_interface__["data"][0]


def _register_quadrant_regions(regions, name: str, mm: MortonMatrix) -> None:
    """Register a Morton matrix as four quadrant regions (or one leaf).

    Quadrants are contiguous quarters in NW, NE, SW, SE order — the
    granularity at which the paper's Section 4.2 analysis attributes the
    conflict misses.
    """
    if mm.depth == 0:
        regions.add_array(name, mm.buf)
        return
    quarter = mm.size // 4
    base = _addr_of(mm.buf)
    for i, q in enumerate(("NW", "NE", "SW", "SE")):
        regions.add(f"{name}.{q}", base + i * quarter * ELEM, quarter * ELEM)


def matmul_trace(
    m: int,
    k: int,
    n: int,
    base_a: int,
    ld_a: int,
    base_b: int,
    ld_b: int,
    base_c: int,
    ld_c: int,
    sink: TraceSink,
    elem: int = ELEM,
) -> int:
    """Trace of a column-major jki multiply ``C(m,n) += A(m,k) . B(k,n)``.

    Operands are described by (base byte address, leading dimension).
    Emits ``n*k*(1 + 2m)`` accesses; returns that count.
    """
    if min(m, k, n) < 1:
        raise ValueError(f"dimensions must be >= 1, got {(m, k, n)}")
    i = np.arange(m, dtype=np.int64)
    a_cols = base_a + elem * (i[None, :] + ld_a * np.arange(k, dtype=np.int64)[:, None])
    c_cols = base_c + elem * (i[None, :] + ld_c * np.arange(n, dtype=np.int64)[:, None])
    b_elems = base_b + elem * (
        np.arange(k, dtype=np.int64)[None, :]
        + ld_b * np.arange(n, dtype=np.int64)[:, None]
    )
    out = np.empty((n, k, 1 + 2 * m), dtype=np.int64)
    out[:, :, 0] = b_elems
    out[:, :, 1::2] = a_cols[None, :, :]
    out[:, :, 2::2] = c_cols[:, None, :]
    sink.consume(out.reshape(-1))
    return out.size


def matmul_trace_blocked(
    m: int,
    k: int,
    n: int,
    base_a: int,
    ld_a: int,
    base_b: int,
    ld_b: int,
    base_c: int,
    ld_c: int,
    sink: TraceSink,
    block: int = 8,
    elem: int = ELEM,
) -> int:
    """Trace of a register-blocked multiply (k blocked by ``block``).

    The higher-fidelity kernel model: within one (column j, k-panel) step
    the ``block`` B elements are loaded once, each A column of the panel
    streams through, and the C column is read+written **once per panel**
    instead of once per k — modelling the accumulator registers a tuned
    kernel (or BLAS micro-kernel) keeps across the k-panel.  Total
    accesses: ``n * (k + m*k + 2*m*ceil(k/block))``.

    :func:`matmul_trace` remains the default (scalar jki) model; the
    choice matters mostly for how much C traffic a leaf generates.
    """
    if min(m, k, n) < 1:
        raise ValueError(f"dimensions must be >= 1, got {(m, k, n)}")
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    i = np.arange(m, dtype=np.int64)
    total = 0
    chunks: list[np.ndarray] = []
    for j in range(n):
        c_col = base_c + elem * (i + ld_c * j)
        for k0 in range(0, k, block):
            k1 = min(k0 + block, k)
            kb = k1 - k0
            b_chunk = base_b + elem * (np.arange(k0, k1, dtype=np.int64) + ld_b * j)
            a_panel = base_a + elem * (
                i[None, :] + ld_a * np.arange(k0, k1, dtype=np.int64)[:, None]
            )
            part = np.concatenate(
                [b_chunk, c_col, a_panel.reshape(-1), c_col]
            )
            chunks.append(part)
            total += part.size
        if len(chunks) >= 256:
            sink.consume(np.concatenate(chunks))
            chunks = []
    if chunks:
        sink.consume(np.concatenate(chunks))
    return total


def vec3_trace(
    count: int,
    base_x: int,
    base_y: int,
    base_dst: int,
    sink: TraceSink,
    elem: int = ELEM,
) -> int:
    """Trace of the single-loop vector op ``dst[i] = x[i] (op) y[i]``.

    This is the paper's Section 3.3 observation in executable form: Morton
    additions are one flat loop over three contiguous streams.
    """
    i = elem * np.arange(count, dtype=np.int64)
    out = np.empty((count, 3), dtype=np.int64)
    out[:, 0] = base_x + i
    out[:, 1] = base_y + i
    out[:, 2] = base_dst + i
    sink.consume(out.reshape(-1))
    return out.size


def add2d_trace(
    rows: int,
    cols: int,
    base_x: int,
    ld_x: int,
    base_y: int,
    ld_y: int,
    base_dst: int,
    ld_dst: int,
    sink: TraceSink,
    elem: int = ELEM,
) -> int:
    """Trace of a two-nested-loop strided addition (column-major views).

    The access pattern of DGEFMM's quadrant additions, where operands are
    submatrix views with distinct leading dimensions.
    """
    i = np.arange(rows, dtype=np.int64)
    j = np.arange(cols, dtype=np.int64)
    out = np.empty((cols, rows, 3), dtype=np.int64)
    out[:, :, 0] = base_x + elem * (i[None, :] + ld_x * j[:, None])
    out[:, :, 1] = base_y + elem * (i[None, :] + ld_y * j[:, None])
    out[:, :, 2] = base_dst + elem * (i[None, :] + ld_dst * j[:, None])
    sink.consume(out.reshape(-1))
    return out.size


def move2d_trace(
    rows: int,
    cols: int,
    base_src: int,
    ld_src: int,
    base_dst: int,
    ld_dst: int,
    sink: TraceSink,
    elem: int = ELEM,
) -> int:
    """Trace of a column-major block copy (read strided, write strided)."""
    i = np.arange(rows, dtype=np.int64)
    j = np.arange(cols, dtype=np.int64)
    out = np.empty((cols, rows, 2), dtype=np.int64)
    out[:, :, 0] = base_src + elem * (i[None, :] + ld_src * j[:, None])
    out[:, :, 1] = base_dst + elem * (i[None, :] + ld_dst * j[:, None])
    sink.consume(out.reshape(-1))
    return out.size


def conversion_trace(
    mm: MortonMatrix,
    base_dense: int,
    ld_dense: int,
    sink: TraceSink,
    to_morton: bool = True,
    elem: int = ELEM,
) -> int:
    """Trace of the interface-level layout conversion for one matrix.

    ``to_morton=True`` models reading the column-major source and writing
    the Morton buffer; ``False`` the back-conversion of the result.  The
    Morton side uses the real buffer address of ``mm``; the dense side the
    caller-provided synthetic or real base.
    """
    base_m = _addr_of(mm.buf)
    tr, tc = mm.tile_r, mm.tile_c
    total = 0
    chunks: list[np.ndarray] = []
    i = np.arange(tr, dtype=np.int64)
    for t in iter_tiles(mm.depth, tr, tc):
        r0, c0 = t.row0, t.col0
        r1 = min(r0 + tr, mm.rows)
        c1 = min(c0 + tc, mm.cols)
        if r1 <= r0 or c1 <= c0:
            continue  # pad-only tile: zero-fill writes only, negligible
        rr = r1 - r0
        j = np.arange(c1 - c0, dtype=np.int64)
        dense = base_dense + elem * ((r0 + i[None, :rr]) + ld_dense * (c0 + j[:, None]))
        morton = (
            base_m
            + elem * (t.offset + i[None, :rr] + tr * j[:, None])
        )
        pair = np.empty((j.shape[0], rr, 2), dtype=np.int64)
        if to_morton:
            pair[:, :, 0] = dense
            pair[:, :, 1] = morton
        else:
            pair[:, :, 0] = morton
            pair[:, :, 1] = dense
        chunks.append(pair.reshape(-1))
        total += pair.size
        if len(chunks) >= 64:
            sink.consume(np.concatenate(chunks))
            chunks = []
    if chunks:
        sink.consume(np.concatenate(chunks))
    return total


class TraceOps:
    """Trace-emitting backend for the real Winograd/Strassen recursion.

    Implements the :class:`repro.core.ops.WinogradOps` protocol; every
    operation records the address stream it would perform, and tallies the
    floating-point operations for the timing model.
    """

    def __init__(self, sink: TraceSink, kernel_model: str = "jki") -> None:
        if kernel_model not in ("jki", "blocked"):
            raise ValueError(f"unknown kernel model {kernel_model!r}")
        self.sink = sink
        self.kernel_model = kernel_model
        self.flops = 0
        self.accesses = 0

    def _mult_trace(self, m, k, n, base_a, ld_a, base_b, ld_b, base_c, ld_c) -> int:
        if self.kernel_model == "blocked":
            return matmul_trace_blocked(
                m, k, n, base_a, ld_a, base_b, ld_b, base_c, ld_c, self.sink
            )
        return matmul_trace(
            m, k, n, base_a, ld_a, base_b, ld_b, base_c, ld_c, self.sink
        )

    def add(self, dst: MortonMatrix, x: MortonMatrix, y: MortonMatrix) -> None:
        """Record the 3-stream trace of ``dst = x + y`` (or ``x - y``)."""
        self.accesses += vec3_trace(
            dst.size, _addr_of(x.buf), _addr_of(y.buf), _addr_of(dst.buf), self.sink
        )
        self.flops += dst.size

    sub = add  # identical traffic and flop count

    def iadd(self, dst: MortonMatrix, x: MortonMatrix) -> None:
        """Record the trace of ``dst += x``."""
        # dst += x reads dst and x, writes dst: same 3-stream pattern with
        # dst appearing as both an input stream and the destination.
        self.accesses += vec3_trace(
            dst.size, _addr_of(dst.buf), _addr_of(x.buf), _addr_of(dst.buf), self.sink
        )
        self.flops += dst.size

    def leaf_mult(self, a: MortonMatrix, b: MortonMatrix, dst: MortonMatrix) -> None:
        """Record the leaf-kernel trace for one tile product."""
        m, k, n = a.tile_r, a.tile_c, b.tile_c
        self.accesses += self._mult_trace(
            m, k, n,
            _addr_of(a.buf), m,
            _addr_of(b.buf), k,
            _addr_of(dst.buf), m,
        )
        self.flops += 2 * m * k * n


def modgemm_trace(
    tilings: tuple[Tiling, Tiling, Tiling],
    sink: TraceSink,
    include_conversion: bool = True,
    variant: str = "winograd",
    kernel_model: str = "jki",
    regions: "object | None" = None,
) -> TraceOps:
    """Full MODGEMM address trace for a planned GEMM.

    Allocates real (zero-filled) Morton buffers and dense operands so every
    traced address is a genuine buffer address, then replays: input
    conversions, the recursion (via :class:`TraceOps` driving the *actual*
    schedule), and the output back-conversion.  Returns the
    :class:`TraceOps` with flop/access tallies.

    ``regions``, when given a :class:`repro.cachesim.classify.RegionMap`,
    is populated with named regions for the operands (with per-quadrant
    subregions, e.g. ``C.NW``), the workspace levels, and the dense
    interface arrays — enabling CProf-style miss attribution.  **Note**:
    the traced buffers are freed when this function returns, so attribute
    against a collected trace, not live memory.
    """
    from ..core.strassen import strassen_multiply
    from ..core.winograd import winograd_multiply

    tm, tk, tn = tilings
    a_mm = MortonMatrix.zeros(tm.n, tk.n, tm, tk)
    b_mm = MortonMatrix.zeros(tk.n, tn.n, tk, tn)
    c_mm = MortonMatrix.zeros(tm.n, tn.n, tm, tn)
    a_dense = np.zeros((tm.n, tk.n), dtype=np.float64, order="F")
    b_dense = np.zeros((tk.n, tn.n), dtype=np.float64, order="F")
    c_dense = np.zeros((tm.n, tn.n), dtype=np.float64, order="F")
    if regions is not None:
        _register_quadrant_regions(regions, "A", a_mm)
        _register_quadrant_regions(regions, "B", b_mm)
        _register_quadrant_regions(regions, "C", c_mm)
        regions.add_array("A.dense", a_dense)
        regions.add_array("B.dense", b_dense)
        regions.add_array("C.dense", c_dense)
        # keep the buffers alive alongside the map so addresses stay valid
        regions._keepalive = (a_mm, b_mm, c_mm, a_dense, b_dense, c_dense)

    ops = TraceOps(sink, kernel_model=kernel_model)
    if include_conversion:
        ops.accesses += conversion_trace(
            a_mm, _addr_of(a_dense), tm.n, sink, to_morton=True
        )
        ops.accesses += conversion_trace(
            b_mm, _addr_of(b_dense), tk.n, sink, to_morton=True
        )
    ws = Workspace(a_mm.depth, a_mm.tile_r, a_mm.tile_c, b_mm.tile_c, with_q=True)
    if regions is not None:
        for i, lv in enumerate(ws.levels):
            regions.add_array(f"ws{i}.S", lv.s.buf)
            regions.add_array(f"ws{i}.T", lv.t.buf)
            regions.add_array(f"ws{i}.P", lv.p.buf)
            if lv.q is not None:
                regions.add_array(f"ws{i}.Q", lv.q.buf)
        regions._keepalive += (ws,)
    if variant == "winograd":
        winograd_multiply(a_mm, b_mm, c_mm, ops=ops, workspace=ws)
    elif variant == "strassen":
        strassen_multiply(a_mm, b_mm, c_mm, ops=ops, workspace=ws)
    else:
        raise ValueError(f"unknown variant {variant!r}")
    if include_conversion:
        ops.accesses += conversion_trace(
            c_mm, _addr_of(c_dense), tm.n, sink, to_morton=False
        )
    return ops


class _DgefmmTracer:
    """Mirror of the dynamic-peeling recursion over a synthetic heap."""

    def __init__(
        self, sink: TraceSink, truncation: int, kernel_model: str = "jki"
    ) -> None:
        if kernel_model not in ("jki", "blocked"):
            raise ValueError(f"unknown kernel model {kernel_model!r}")
        self.sink = sink
        self.truncation = truncation
        self.kernel_model = kernel_model
        self.space = AddressSpace()
        self.flops = 0
        self.accesses = 0

    def _mult_trace(self, m, k, n, a, b, c) -> int:
        if self.kernel_model == "blocked":
            return matmul_trace_blocked(
                m, k, n, a[0], a[1], b[0], b[1], c[0], c[1], self.sink
            )
        return matmul_trace(
            m, k, n, a[0], a[1], b[0], b[1], c[0], c[1], self.sink
        )

    # Matrices are (base, ld) descriptors over the synthetic heap; views
    # adjust base exactly as column-major pointer arithmetic would.

    def multiply(self, a, b, c, m: int, k: int, n: int) -> None:
        if min(m, k, n) <= self.truncation:
            self.accesses += self._mult_trace(m, k, n, a, b, c)
            self.flops += 2 * m * k * n
            return
        me, ke, ne = m & ~1, k & ~1, n & ~1
        self._winograd(a, b, c, me, ke, ne)
        if k != ke:  # rank-1 fix-up: C11 += a12 . b21
            self.accesses += self._mult_trace(
                me, 1, ne,
                (a[0] + ELEM * ke * a[1], a[1]), (b[0] + ELEM * ke, b[1]), c,
            )
            self.flops += 2 * me * ne
        if n != ne:  # matrix-vector: last column of C
            self.accesses += self._mult_trace(
                me, k, 1, a,
                (b[0] + ELEM * ne * b[1], b[1]),
                (c[0] + ELEM * ne * c[1], c[1]),
            )
            self.flops += 2 * me * k
        if m != me:  # vector-matrix: last row of C
            self.accesses += self._mult_trace(
                1, k, n, (a[0] + ELEM * me, a[1]), b,
                (c[0] + ELEM * me, c[1]),
            )
            self.flops += 2 * k * n

    def _view(self, mat, i: int, j: int):
        return (mat[0] + ELEM * (i + j * mat[1]), mat[1])

    def _winograd(self, a, b, c, m: int, k: int, n: int) -> None:
        mh, kh, nh = m // 2, k // 2, n // 2
        a11, a12 = self._view(a, 0, 0), self._view(a, 0, kh)
        a21, a22 = self._view(a, mh, 0), self._view(a, mh, kh)
        b11, b12 = self._view(b, 0, 0), self._view(b, 0, nh)
        b21, b22 = self._view(b, kh, 0), self._view(b, kh, nh)
        c11, c12 = self._view(c, 0, 0), self._view(c, 0, nh)
        c21, c22 = self._view(c, mh, 0), self._view(c, mh, nh)

        s = (self.space.alloc_matrix(mh, kh), mh)
        t = (self.space.alloc_matrix(kh, nh), kh)
        p = (self.space.alloc_matrix(mh, nh), mh)
        q = (self.space.alloc_matrix(mh, nh), mh)

        def add(dst, x, y, rows, cols):
            self.accesses += add2d_trace(
                rows, cols, x[0], x[1], y[0], y[1], dst[0], dst[1], self.sink
            )
            self.flops += rows * cols

        add(s, a11, a21, mh, kh)                    # S3
        add(t, b22, b12, kh, nh)                    # T3
        self.multiply(s, t, p, mh, kh, nh)          # P5
        add(s, a21, a22, mh, kh)                    # S1
        add(t, b12, b11, kh, nh)                    # T1
        self.multiply(s, t, c22, mh, kh, nh)        # P3
        add(s, s, a11, mh, kh)                      # S2
        add(t, b22, t, kh, nh)                      # T2
        self.multiply(s, t, c11, mh, kh, nh)        # P4
        add(s, a12, s, mh, kh)                      # S4
        add(t, b21, t, kh, nh)                      # T4
        self.multiply(s, b22, c12, mh, kh, nh)      # P6
        self.multiply(a22, t, c21, mh, kh, nh)      # P7
        self.multiply(a11, b11, q, mh, kh, nh)      # P1
        add(c11, c11, q, mh, nh)                    # U2
        add(p, p, c11, mh, nh)                      # U3
        add(c12, c12, c11, mh, nh)
        add(c12, c12, c22, mh, nh)
        add(c21, c21, p, mh, nh)
        add(c22, c22, p, mh, nh)
        self.multiply(a12, b21, p, mh, kh, nh)      # P2
        add(c11, q, p, mh, nh)                      # U1

        for buf in (s, t, p, q):
            self.space.free(buf[0])


def dgefmm_trace(
    m: int,
    k: int,
    n: int,
    sink: TraceSink,
    truncation: int = 64,
    kernel_model: str = "jki",
) -> _DgefmmTracer:
    """Full DGEFMM address trace for an ``m x k . k x n`` product."""
    tracer = _DgefmmTracer(sink, truncation, kernel_model=kernel_model)
    a = (tracer.space.alloc_matrix(m, k), m)
    b = (tracer.space.alloc_matrix(k, n), k)
    c = (tracer.space.alloc_matrix(m, n), m)
    tracer.multiply(a, b, c, m, k, n)
    return tracer


class _DgemmwTracer:
    """Mirror of the dynamic-overlap recursion over a synthetic heap.

    Follows :mod:`repro.baselines.dgemmw` step for step: per level, eight
    contiguous block copies (the overlap scheme's extra data movement),
    the 15 Winograd additions on contiguous temporaries, 7 recursive
    products, and the reassembly writes into the parent's result.
    """

    def __init__(self, sink: TraceSink, truncation: int) -> None:
        self.sink = sink
        self.truncation = truncation
        self.space = AddressSpace()
        self.flops = 0
        self.accesses = 0

    def multiply(self, a, b, m: int, k: int, n: int) -> tuple[int, int]:
        """Returns the (base, ld) of the freshly allocated result D."""
        d = (self.space.alloc_matrix(m, n), m)
        if min(m, k, n) <= self.truncation:
            self.accesses += matmul_trace(
                m, k, n, a[0], a[1], b[0], b[1], d[0], d[1], self.sink
            )
            self.flops += 2 * m * k * n
            return d

        mh, kh, nh = (m + 1) // 2, (k + 1) // 2, (n + 1) // 2

        def copy_block(src, i: int, j: int, rows: int, cols: int):
            dst = (self.space.alloc_matrix(rows, cols), rows)
            self.accesses += move2d_trace(
                rows, cols, src[0] + ELEM * (i + j * src[1]), src[1],
                dst[0], dst[1], self.sink,
            )
            return dst

        a11 = copy_block(a, 0, 0, mh, kh)
        a12 = copy_block(a, 0, k - kh, mh, kh)
        a21 = copy_block(a, m - mh, 0, mh, kh)
        a22 = copy_block(a, m - mh, k - kh, mh, kh)
        b11 = copy_block(b, 0, 0, kh, nh)
        b12 = copy_block(b, 0, n - nh, kh, nh)
        b21 = copy_block(b, k - kh, 0, kh, nh)
        b22 = copy_block(b, k - kh, n - nh, kh, nh)

        def temp(rows: int, cols: int):
            return (self.space.alloc_matrix(rows, cols), rows)

        def vadd(dst, x, y, count: int):
            self.accesses += vec3_trace(count, x[0], y[0], dst[0], self.sink)
            self.flops += count

        na, nb = mh * kh, kh * nh
        s1, s2, s3, s4 = temp(mh, kh), temp(mh, kh), temp(mh, kh), temp(mh, kh)
        t1, t2, t3, t4 = temp(kh, nh), temp(kh, nh), temp(kh, nh), temp(kh, nh)
        vadd(s1, a21, a22, na)
        vadd(s2, s1, a11, na)
        vadd(s3, a11, a21, na)
        vadd(s4, a12, s2, na)
        vadd(t1, b12, b11, nb)
        vadd(t2, b22, t1, nb)
        vadd(t3, b22, b12, nb)
        vadd(t4, b21, t2, nb)

        p1 = self.multiply(a11, b11, mh, kh, nh)
        p2 = self.multiply(a12, b21, mh, kh, nh)
        p3 = self.multiply(s1, t1, mh, kh, nh)
        p4 = self.multiply(s2, t2, mh, kh, nh)
        p5 = self.multiply(s3, t3, mh, kh, nh)
        p6 = self.multiply(s4, b22, mh, kh, nh)
        p7 = self.multiply(a22, t4, mh, kh, nh)

        nc = mh * nh
        u2, c11, c21, c22, c12 = (
            temp(mh, nh), temp(mh, nh), temp(mh, nh), temp(mh, nh), temp(mh, nh)
        )
        vadd(u2, p1, p4, nc)
        vadd(c11, p1, p2, nc)
        vadd(u2, u2, p5, nc)      # u3 in place
        vadd(c21, u2, p7, nc)
        vadd(c22, u2, p3, nc)
        vadd(c12, u2, p3, nc)     # reuses u2 as u3; matches 15-add count
        vadd(c12, c12, p6, nc)

        # Reassembly: overlapped strips written twice, second copy wins.
        for blk, i, j in ((c11, 0, 0), (c12, 0, n - nh), (c21, m - mh, 0),
                          (c22, m - mh, n - nh)):
            self.accesses += move2d_trace(
                mh, nh, blk[0], blk[1], d[0] + ELEM * (i + j * d[1]), d[1],
                self.sink,
            )

        for buf in (a11, a12, a21, a22, b11, b12, b21, b22,
                    s1, s2, s3, s4, t1, t2, t3, t4,
                    p1, p2, p3, p4, p5, p6, p7, u2, c11, c21, c22, c12):
            self.space.free(buf[0])
        return d


def dgemmw_trace(
    m: int, k: int, n: int, sink: TraceSink, truncation: int = 64
) -> _DgemmwTracer:
    """Full DGEMMW address trace for an ``m x k . k x n`` product."""
    tracer = _DgemmwTracer(sink, truncation)
    a = (tracer.space.alloc_matrix(m, k), m)
    b = (tracer.space.alloc_matrix(k, n), k)
    tracer.multiply(a, b, m, k, n)
    return tracer
