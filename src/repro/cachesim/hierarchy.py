"""Multi-level cache hierarchy simulation.

Levels compose by miss filtering: the addresses that miss in L1 form the
reference stream seen by L2, and so on — the standard inclusive-hierarchy
approximation.  Direct-mapped levels use the vectorised engine; associative
levels fall back to the LRU reference, which is affordable because each
level only sees the previous level's (much sparser) miss stream.

Consecutive duplicate *block* references are collapsed before simulation
(they are guaranteed hits at every level) — a large constant-factor saving
on matrix-kernel traces, which touch each operand block several times in a
row, with hit/access counts corrected so reported miss ratios are exact.
"""

from __future__ import annotations

import numpy as np

from .cache import CacheConfig, CacheStats, LRUCache
from .vectorized import DirectMappedCache

__all__ = ["make_cache", "CacheHierarchy"]


def make_cache(config: CacheConfig):
    """Pick the fastest exact simulator for a level's geometry."""
    if config.assoc == 1:
        return DirectMappedCache(config)
    return LRUCache(config)


class CacheHierarchy:
    """A stack of cache levels fed by one reference stream."""

    def __init__(self, configs: "list[CacheConfig] | tuple[CacheConfig, ...]") -> None:
        if not configs:
            raise ValueError("hierarchy needs at least one level")
        self.levels = [make_cache(c) for c in configs]

    def reset(self) -> None:
        """Clear every level's contents and statistics."""
        for lv in self.levels:
            lv.reset()

    @property
    def stats(self) -> list[CacheStats]:
        return [lv.stats for lv in self.levels]

    def access(self, addrs: np.ndarray) -> None:
        """Stream one trace chunk through all levels."""
        addrs = np.asarray(addrs, dtype=np.int64).ravel()
        if addrs.size == 0:
            return
        first = self.levels[0]
        block_bits = first.config.block_bits
        blocks = addrs >> block_bits
        keep = np.empty(blocks.shape[0], dtype=bool)
        keep[0] = True
        np.not_equal(blocks[1:], blocks[:-1], out=keep[1:])
        deduped = addrs[keep]
        dropped = addrs.shape[0] - deduped.shape[0]

        stream = deduped
        for i, lv in enumerate(self.levels):
            if stream.size == 0:
                lv.stats.accesses += 0
                continue
            mask = lv.access(stream, return_mask=True)
            if i == 0:
                # Collapsed duplicates were guaranteed hits at L1.
                lv.stats.accesses += dropped
            stream = stream[mask]

    def miss_ratio(self, level: int = 0) -> float:
        """Miss ratio observed at the given level (default L1)."""
        return self.levels[level].stats.miss_ratio

    def misses(self) -> list[int]:
        """Accumulated miss counts, one per level."""
        return [lv.stats.misses for lv in self.levels]
