"""Linear execution-time model over flop and miss counts.

``t = flops / peak + sum_l misses_l * penalty_l`` — the standard
first-order model for blocked dense kernels, used here to turn simulated
cache behaviour into the paper's "second platform" numbers (Figures 3, 5,
6 model variants).  Absolute values are *not* claims; the reproduced
quantities are ratios between implementations run through the same model.
"""

from __future__ import annotations

from dataclasses import dataclass

from .hierarchy import CacheHierarchy
from .machines import Machine

__all__ = ["TimingModel", "ModelledRun"]


@dataclass(frozen=True)
class ModelledRun:
    """Outcome of pushing one workload trace through a machine model."""

    machine: str
    flops: int
    accesses: int
    misses: tuple[int, ...]
    seconds: float

    @property
    def mflops(self) -> float:
        return self.flops / self.seconds / 1e6 if self.seconds > 0 else 0.0

    @property
    def l1_miss_ratio(self) -> float:
        return self.misses[0] / self.accesses if self.accesses else 0.0


class TimingModel:
    """Evaluate the linear model for a machine."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine

    def hierarchy(self) -> CacheHierarchy:
        """Fresh cache hierarchy with this machine's levels."""
        return CacheHierarchy(list(self.machine.levels))

    def evaluate(
        self, flops: int, accesses: int, misses: "tuple[int, ...] | list[int]"
    ) -> ModelledRun:
        """Apply the linear model to explicit flop and per-level miss counts."""
        if len(misses) != len(self.machine.miss_penalties):
            raise ValueError(
                f"{len(misses)} miss counts for "
                f"{len(self.machine.miss_penalties)} levels"
            )
        seconds = flops / self.machine.peak_flops
        for miss_count, penalty in zip(misses, self.machine.miss_penalties):
            seconds += miss_count * penalty
        return ModelledRun(
            machine=self.machine.name,
            flops=int(flops),
            accesses=int(accesses),
            misses=tuple(int(x) for x in misses),
            seconds=float(seconds),
        )

    def run_trace(self, flops: int, accesses: int, hierarchy: CacheHierarchy) -> ModelledRun:
        """Evaluate using the miss counts a hierarchy accumulated."""
        return self.evaluate(flops, accesses, [lv.stats.misses for lv in hierarchy.levels])
