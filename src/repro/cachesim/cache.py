"""Cache geometry configuration and the set-associative LRU simulator.

The LRU simulator is the reference implementation: general (any
associativity) but per-access Python work.  The vectorised direct-mapped
engine in :mod:`repro.cachesim.vectorized` must agree with it exactly at
associativity 1 — a property the test-suite checks — and is what the large
experiments use, since the paper's analysed caches (Alpha 8 KB L1, the
16 KB ATOM configuration) are direct-mapped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CacheConfig", "CacheStats", "LRUCache"]


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """One cache level's geometry."""

    size_bytes: int
    block_bytes: int
    assoc: int = 1
    name: str = "cache"

    def __post_init__(self) -> None:
        if not _is_pow2(self.block_bytes):
            raise ValueError(f"block size must be a power of two, got {self.block_bytes}")
        if self.size_bytes % (self.block_bytes * self.assoc) != 0:
            raise ValueError(
                f"{self.size_bytes} B / ({self.block_bytes} B x assoc {self.assoc}) "
                "does not divide into whole sets"
            )
        if not _is_pow2(self.n_sets):
            raise ValueError(
                f"set count {self.n_sets} must be a power of two for address slicing"
            )

    @property
    def n_blocks(self) -> int:
        return self.size_bytes // self.block_bytes

    @property
    def n_sets(self) -> int:
        return self.n_blocks // self.assoc

    @property
    def block_bits(self) -> int:
        return self.block_bytes.bit_length() - 1

    @property
    def set_bits(self) -> int:
        return self.n_sets.bit_length() - 1

    def split(self, addrs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised (set index, tag) decomposition of byte addresses."""
        blocks = np.asarray(addrs, dtype=np.int64) >> self.block_bits
        sets = blocks & (self.n_sets - 1)
        tags = blocks >> self.set_bits
        return sets, tags


@dataclass
class CacheStats:
    """Accumulated access/miss counts for one cache level."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another stats object into this one."""
        self.accesses += other.accesses
        self.misses += other.misses


class LRUCache:
    """Set-associative cache with true LRU replacement.

    Per-access Python cost; intended for moderate traces (the filtered
    miss streams of lower levels, unit tests, and cross-validation of the
    vectorised engine).  State persists across ``access`` calls so traces
    may be streamed in chunks.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        # sets[s] is the LRU-ordered list of resident tags (MRU last).
        self._sets: list[list[int]] = [[] for _ in range(config.n_sets)]

    def reset(self) -> None:
        """Clear contents and statistics."""
        self.stats = CacheStats()
        self._sets = [[] for _ in range(self.config.n_sets)]

    def access(self, addrs: np.ndarray, return_mask: bool = True) -> np.ndarray | int:
        """Simulate byte-address accesses; returns miss mask (or count)."""
        sets, tags = self.config.split(addrs)
        assoc = self.config.assoc
        table = self._sets
        miss = np.zeros(len(sets), dtype=bool) if return_mask else None
        n_miss = 0
        for i, (s, t) in enumerate(zip(sets.tolist(), tags.tolist())):
            ways = table[s]
            try:
                ways.remove(t)
                ways.append(t)  # refresh to MRU
            except ValueError:
                n_miss += 1
                if miss is not None:
                    miss[i] = True
                if len(ways) >= assoc:
                    ways.pop(0)
                ways.append(t)
        self.stats.accesses += len(sets)
        self.stats.misses += n_miss
        return miss if miss is not None else n_miss
