"""Address-trace plumbing: sinks, collectors, and a synthetic address space.

Traces are streamed, not materialised: generators push int64 chunks of byte
addresses into a :class:`TraceSink`, which either simulates them on the fly
(:class:`SimulatorSink`), stores them (:class:`TraceCollector`, for tests
and small experiments) or just counts (:class:`CountingSink`).  Full-scale
Figure 9 runs produce hundreds of millions of accesses; streaming keeps the
memory footprint at one chunk.

:class:`AddressSpace` is a malloc-like allocator for generators that model
code paths we do not execute for real (the DGEFMM twin): first-fit with
block coalescing, 64-byte alignment, so temporaries allocated/freed per
recursion level reuse addresses the way a real allocator would.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from .hierarchy import CacheHierarchy

__all__ = [
    "TraceSink",
    "TraceCollector",
    "SimulatorSink",
    "CountingSink",
    "AddressSpace",
]

ELEM = 8  #: bytes per float64 element


class TraceSink(Protocol):
    """Anything that can receive address-trace chunks."""

    def consume(self, addrs: np.ndarray) -> None:
        """Accept one chunk of byte addresses (int64, program order)."""


class TraceCollector:
    """Stores chunks; ``concatenate()`` yields the whole trace."""

    def __init__(self) -> None:
        self.chunks: list[np.ndarray] = []
        self.total = 0

    def consume(self, addrs: np.ndarray) -> None:
        """Append one chunk of byte addresses."""
        a = np.asarray(addrs, dtype=np.int64).ravel()
        if a.size:
            self.chunks.append(a)
            self.total += a.size

    def concatenate(self) -> np.ndarray:
        """The whole collected trace as one array."""
        if not self.chunks:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(self.chunks)


class SimulatorSink:
    """Feeds chunks straight into a cache hierarchy."""

    def __init__(self, hierarchy: CacheHierarchy) -> None:
        self.hierarchy = hierarchy

    def consume(self, addrs: np.ndarray) -> None:
        """Simulate one chunk immediately."""
        self.hierarchy.access(addrs)


class CountingSink:
    """Counts accesses without simulating (for sizing and tests)."""

    def __init__(self) -> None:
        self.total = 0

    def consume(self, addrs: np.ndarray) -> None:
        """Count one chunk's accesses."""
        self.total += np.asarray(addrs).size


class AddressSpace:
    """First-fit synthetic heap with alignment and coalescing free."""

    def __init__(self, base: int = 1 << 20, align: int = 64) -> None:
        if align & (align - 1):
            raise ValueError(f"alignment must be a power of two, got {align}")
        self.align = align
        self._top = base
        # Sorted list of (start, size) free blocks.
        self._free: list[tuple[int, int]] = []
        self.live: dict[int, int] = {}

    def _round(self, n: int) -> int:
        a = self.align
        return (n + a - 1) & ~(a - 1)

    def alloc(self, nbytes: int) -> int:
        """Allocate ``nbytes``; returns the base byte address."""
        size = self._round(max(1, nbytes))
        for i, (start, free_size) in enumerate(self._free):
            if free_size >= size:
                if free_size == size:
                    self._free.pop(i)
                else:
                    self._free[i] = (start + size, free_size - size)
                self.live[start] = size
                return start
        start = self._top
        self._top += size
        self.live[start] = size
        return start

    def free(self, addr: int) -> None:
        """Release an allocation; neighbouring free blocks coalesce."""
        size = self.live.pop(addr)
        # Insert sorted and coalesce with neighbours.
        self._free.append((addr, size))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for start, sz in self._free:
            if merged and merged[-1][0] + merged[-1][1] == start:
                merged[-1] = (merged[-1][0], merged[-1][1] + sz)
            else:
                merged.append((start, sz))
        self._free = merged

    def alloc_matrix(self, rows: int, cols: int, elem: int = ELEM) -> int:
        """Allocate a column-major ``rows x cols`` matrix; returns its base."""
        return self.alloc(rows * cols * elem)
