"""Streaming, fully vectorised direct-mapped cache simulation.

A direct-mapped cache has one resident tag per set, so a trace can be
simulated without any per-access Python work:

1. stable-argsort the chunk's accesses by set index — accesses to the same
   set become contiguous *in their original relative order*;
2. within each run of equal set indices, an access misses iff its tag
   differs from the immediately preceding access to that set;
3. the first access of each run compares against the per-set resident-tag
   state carried over from earlier chunks, and the last access of each run
   becomes the new resident tag.

This makes per-chunk cost O(n log n) in numpy, fast enough for the
hundreds of millions of accesses a full-scale Figure 9 run produces, while
remaining exactly equivalent to the per-access LRU reference at
associativity 1 (property-tested).
"""

from __future__ import annotations

import numpy as np

from .cache import CacheConfig, CacheStats

__all__ = ["DirectMappedCache"]


class DirectMappedCache:
    """Direct-mapped cache with vectorised chunk simulation.

    State persists across :meth:`access` calls, so arbitrarily long traces
    can be streamed through in bounded memory.
    """

    def __init__(self, config: CacheConfig) -> None:
        if config.assoc != 1:
            raise ValueError(
                f"DirectMappedCache requires associativity 1, got {config.assoc}"
            )
        self.config = config
        self.stats = CacheStats()
        # Resident tag per set; -1 = invalid (no real tag is negative since
        # addresses are non-negative).
        self._resident = np.full(config.n_sets, -1, dtype=np.int64)

    def reset(self) -> None:
        """Clear contents and statistics."""
        self.stats = CacheStats()
        self._resident.fill(-1)

    def access(self, addrs: np.ndarray, return_mask: bool = True) -> np.ndarray | int:
        """Simulate byte-address accesses; returns the miss mask (or count)."""
        addrs = np.asarray(addrs, dtype=np.int64).ravel()
        n = addrs.shape[0]
        self.stats.accesses += n
        if n == 0:
            return np.zeros(0, dtype=bool) if return_mask else 0

        sets, tags = self.config.split(addrs)
        order = np.argsort(sets, kind="stable")
        s_sorted = sets[order]
        t_sorted = tags[order]

        run_start = np.empty(n, dtype=bool)
        run_start[0] = True
        np.not_equal(s_sorted[1:], s_sorted[:-1], out=run_start[1:])

        miss_sorted = np.empty(n, dtype=bool)
        # Within runs: miss iff the tag changed from the previous access.
        np.not_equal(t_sorted[1:], t_sorted[:-1], out=miss_sorted[1:])
        # Run heads: miss iff the carried resident tag differs.
        heads = np.flatnonzero(run_start)
        miss_sorted[heads] = self._resident[s_sorted[heads]] != t_sorted[heads]

        # Update carried state with each run's final tag.
        last = np.empty(n, dtype=bool)
        last[:-1] = run_start[1:]
        last[-1] = True
        tail = np.flatnonzero(last)
        self._resident[s_sorted[tail]] = t_sorted[tail]

        n_miss = int(np.count_nonzero(miss_sorted))
        self.stats.misses += n_miss
        if not return_mask:
            return n_miss
        miss = np.empty(n, dtype=bool)
        miss[order] = miss_sorted
        return miss
