# Common developer targets for the repro package.

PYTHON ?= python

.PHONY: install test lint bench figures quick-figures clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	$(PYTHON) -m ruff check src tests benchmarks examples

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	$(PYTHON) -m repro.experiments all

quick-figures:
	$(PYTHON) -m repro.experiments all --quick

clean:
	rm -rf build src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
