# Common developer targets for the repro package.

PYTHON ?= python

# Per-test watchdog: use pytest-timeout when installed; otherwise
# tests/conftest.py arms a stdlib faulthandler fallback with the same
# 120 s budget, so hung concurrency tests abort with stack dumps.
TIMEOUT_FLAGS := $(shell $(PYTHON) -c "import pytest_timeout" 2>/dev/null \
	&& echo "--timeout=120 --timeout-method=thread")

.PHONY: install test lint bench bench-smoke tune-smoke trace-demo figures quick-figures clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ $(TIMEOUT_FLAGS)

lint:
	$(PYTHON) -m ruff check src tests benchmarks examples

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Tiny-size run of the scheduler/conversion scaling, memory-schedule,
# stacked-batch, GEMM-semantics and plan-store/autotune benchmarks, then
# schema + guard checks of the JSON reports they emit
# (BENCH_parallel.json, BENCH_memory.json, BENCH_batch.json,
# BENCH_semantics.json, BENCH_convert.json, BENCH_tune.json).
bench-smoke: tune-smoke
	PYTHONPATH=src BENCH_PARALLEL_QUICK=1 $(PYTHON) -m pytest \
		benchmarks/test_bench_parallel.py -q
	$(PYTHON) benchmarks/validate_bench_parallel.py
	PYTHONPATH=src BENCH_MEMORY_QUICK=1 $(PYTHON) -m pytest \
		benchmarks/test_bench_memory.py -q
	$(PYTHON) benchmarks/validate_bench_memory.py
	PYTHONPATH=src BENCH_BATCH_QUICK=1 $(PYTHON) -m pytest \
		benchmarks/test_bench_batch.py -q
	$(PYTHON) benchmarks/validate_bench_batch.py
	PYTHONPATH=src BENCH_SEMANTICS_QUICK=1 $(PYTHON) -m pytest \
		benchmarks/test_bench_semantics.py -q
	$(PYTHON) benchmarks/validate_bench_semantics.py
	PYTHONPATH=src BENCH_CONVERT_QUICK=1 $(PYTHON) -m pytest \
		benchmarks/test_bench_convert.py -q
	$(PYTHON) benchmarks/validate_bench_convert.py

# Tiny-shape autotune against a temp plan store, then schema + guard
# checks of BENCH_tune.json (warm store skips calibration; tuned plan
# never >2% slower than the heuristic default and bit-identical to it).
tune-smoke:
	PYTHONPATH=src BENCH_TUNE_QUICK=1 $(PYTHON) -m pytest \
		benchmarks/test_bench_tune.py -q
	$(PYTHON) benchmarks/validate_bench_tune.py

# Traced 513x513 multiply end to end; validates the dumped trace
# document against TRACE_SCHEMA and prints a per-worker summary.
trace-demo:
	PYTHONPATH=src $(PYTHON) examples/trace_demo.py

figures:
	$(PYTHON) -m repro.experiments all

quick-figures:
	$(PYTHON) -m repro.experiments all --quick

clean:
	rm -rf build src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
