# Common developer targets for the repro package.

PYTHON ?= python

.PHONY: install test lint bench bench-smoke figures quick-figures clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	$(PYTHON) -m ruff check src tests benchmarks examples

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Tiny-size run of the scheduler/conversion scaling, memory-schedule and
# stacked-batch benchmarks, then schema + guard checks of the JSON reports
# they emit (BENCH_parallel.json, BENCH_memory.json, BENCH_batch.json).
bench-smoke:
	PYTHONPATH=src BENCH_PARALLEL_QUICK=1 $(PYTHON) -m pytest \
		benchmarks/test_bench_parallel.py -q
	$(PYTHON) benchmarks/validate_bench_parallel.py
	PYTHONPATH=src BENCH_MEMORY_QUICK=1 $(PYTHON) -m pytest \
		benchmarks/test_bench_memory.py -q
	$(PYTHON) benchmarks/validate_bench_memory.py
	PYTHONPATH=src BENCH_BATCH_QUICK=1 $(PYTHON) -m pytest \
		benchmarks/test_bench_batch.py -q
	$(PYTHON) benchmarks/validate_bench_batch.py

figures:
	$(PYTHON) -m repro.experiments all

quick-figures:
	$(PYTHON) -m repro.experiments all --quick

clean:
	rm -rf build src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
